package sdf

import (
	"encoding/binary"
	"fmt"
	"os"
	"sort"

	"repro/internal/array"
)

// Writer builds an sdf file. Datasets are staged in memory and the
// whole file is laid out and flushed on Close; benchmark files in this
// reproduction top out at 64 MB (paper §V-B), which comfortably fits.
type Writer struct {
	path     string
	datasets []*stagedDataset
	byName   map[string]*stagedDataset
	closed   bool
}

// stagedDataset is a dataset being assembled in memory.
type stagedDataset struct {
	meta  datasetMeta
	space array.Space
	// data is the full (padded, for chunked layouts) data region.
	data []byte
	// present, for debloated chunked datasets, marks which chunks
	// will be written. Nil means all chunks present.
	present []bool
	// packedRuns, for packed (element-granular debloated) datasets,
	// lists the kept element runs.
	packedRuns []packRun
	layout     array.Layout
}

// NewWriter returns a Writer that will create the file at path on
// Close.
func NewWriter(path string) *Writer {
	return &Writer{path: path, byName: make(map[string]*stagedDataset)}
}

// DatasetWriter provides element-level population of one staged
// dataset.
type DatasetWriter struct {
	w  *Writer
	sd *stagedDataset
}

// CreateDataset stages a new dataset. A nil or empty chunk shape
// selects a contiguous layout; otherwise the dataset is chunked with
// the given chunk extents.
func (w *Writer) CreateDataset(name string, space array.Space, dt array.DType, chunk []int) (*DatasetWriter, error) {
	if w.closed {
		return nil, fmt.Errorf("sdf: writer for %s already closed", w.path)
	}
	if name == "" {
		return nil, fmt.Errorf("sdf: empty dataset name")
	}
	if _, dup := w.byName[name]; dup {
		return nil, fmt.Errorf("sdf: duplicate dataset %q", name)
	}
	if !dt.Valid() {
		return nil, fmt.Errorf("sdf: invalid dtype for dataset %q", name)
	}
	sd := &stagedDataset{
		meta: datasetMeta{
			Name:  name,
			DType: dt,
			Dims:  space.Dims(),
		},
		space: space,
	}
	if len(chunk) == 0 {
		sd.meta.Layout = layoutContiguous
		sd.layout = array.NewContiguousLayout(space, dt)
	} else {
		cl, err := array.NewChunkedLayout(space, dt, chunk)
		if err != nil {
			return nil, err
		}
		sd.meta.Layout = layoutChunked
		sd.meta.Chunk = cl.ChunkShape()
		sd.layout = cl
	}
	sd.data = make([]byte, sd.layout.DataSize())
	w.datasets = append(w.datasets, sd)
	w.byName[name] = sd
	return &DatasetWriter{w: w, sd: sd}, nil
}

// Set writes the value of one element.
func (dw *DatasetWriter) Set(ix array.Index, v float64) error {
	off, err := dw.sd.layout.Offset(ix)
	if err != nil {
		return err
	}
	encodeValue(dw.sd.data[off:], dw.sd.meta.DType, v)
	return nil
}

// Fill populates every element from fn(ix). The index passed to fn is
// reused; clone it if it escapes.
func (dw *DatasetWriter) Fill(fn func(array.Index) float64) error {
	var fillErr error
	dw.sd.space.Each(func(ix array.Index) bool {
		if err := dw.Set(ix, fn(ix)); err != nil {
			fillErr = err
			return false
		}
		return true
	})
	return fillErr
}

// OmitChunksExcept marks the dataset as debloated and keeps only the
// chunks whose linear ids appear in keep. It is only valid for chunked
// datasets; the debloat package uses it to materialize D_Θ.
func (dw *DatasetWriter) OmitChunksExcept(keep map[int64]bool) error {
	sd := dw.sd
	if sd.meta.Layout != layoutChunked {
		return fmt.Errorf("sdf: OmitChunksExcept on contiguous dataset %q", sd.meta.Name)
	}
	cl := sd.layout.(*array.ChunkedLayout)
	n := cl.NumChunks()
	sd.present = make([]bool, n)
	for lin := range keep {
		if lin < 0 || lin >= n {
			return fmt.Errorf("sdf: chunk id %d out of range [0,%d)", lin, n)
		}
		sd.present[lin] = true
	}
	sd.meta.Debloated = true
	return nil
}

// Close lays out all staged datasets, writes the file, and
// invalidates the writer.
func (w *Writer) Close() error {
	if w.closed {
		return fmt.Errorf("sdf: writer for %s closed twice", w.path)
	}
	w.closed = true

	// Deterministic dataset order for byte-stable output.
	sort.SliceStable(w.datasets, func(i, j int) bool {
		return w.datasets[i].meta.Name < w.datasets[j].meta.Name
	})

	// First pass: compute per-dataset stored sizes and chunk tables
	// against a provisional base of zero; metadata length depends on
	// chunk table sizes, not offsets, so sizes are stable.
	metas := make([]*datasetMeta, len(w.datasets))
	for i, sd := range w.datasets {
		sd.buildChunkTable(0)
		metas[i] = &sd.meta
	}
	metaBytes, err := encodeMeta(metas)
	if err != nil {
		return err
	}
	dataBase := align8(int64(headerSize + len(metaBytes)))

	// Second pass: assign real offsets now that the metadata length is
	// known, then re-encode.
	off := dataBase
	for _, sd := range w.datasets {
		sd.buildChunkTable(off)
		off = align8(off + sd.meta.DataLen)
	}
	metaBytes, err = encodeMeta(metas)
	if err != nil {
		return err
	}
	if int64(headerSize+len(metaBytes)) > dataBase {
		// Unreachable: re-encoding with different offsets cannot grow
		// the block because all integer fields are fixed-width.
		return fmt.Errorf("sdf: metadata grew between layout passes")
	}

	f, err := os.Create(w.path)
	if err != nil {
		return fmt.Errorf("sdf: create %s: %w", w.path, err)
	}
	defer f.Close()

	header := make([]byte, headerSize)
	copy(header, Magic)
	binary.LittleEndian.PutUint16(header[4:], Version)
	binary.LittleEndian.PutUint32(header[8:], uint32(len(metaBytes)))
	binary.LittleEndian.PutUint32(header[12:], metaCRC(metaBytes))
	if _, err := f.Write(header); err != nil {
		return fmt.Errorf("sdf: write header: %w", err)
	}
	if _, err := f.Write(metaBytes); err != nil {
		return fmt.Errorf("sdf: write metadata: %w", err)
	}
	for _, sd := range w.datasets {
		if _, err := f.Seek(sd.meta.DataOff, 0); err != nil {
			return fmt.Errorf("sdf: seek to data region: %w", err)
		}
		if err := sd.writeData(f); err != nil {
			return err
		}
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("sdf: sync %s: %w", w.path, err)
	}
	return nil
}

// buildChunkTable fills in DataOff, DataLen and, for chunked layouts,
// the chunk table, given the dataset's data region starting at base.
func (sd *stagedDataset) buildChunkTable(base int64) {
	sd.meta.DataOff = base
	if sd.meta.Layout == layoutContiguous {
		sd.meta.DataLen = int64(len(sd.data))
		return
	}
	if sd.meta.Layout == layoutPacked {
		elem := int64(sd.meta.DType.Size())
		off := base
		runs := make([]packRun, len(sd.packedRuns))
		for i, r := range sd.packedRuns {
			r.off = off
			runs[i] = r
			off += r.count * elem
		}
		sd.meta.PackRuns = runs
		sd.meta.DataLen = off - base
		return
	}
	cl := sd.layout.(*array.ChunkedLayout)
	n := cl.NumChunks()
	chunkBytes := cl.ChunkSizeBytes()
	table := make([]int64, n)
	off := base
	for i := int64(0); i < n; i++ {
		if sd.present != nil && !sd.present[i] {
			table[i] = missingChunk
			continue
		}
		table[i] = off
		off += chunkBytes
	}
	sd.meta.ChunkTable = table
	sd.meta.DataLen = off - base
}

// writeData emits the dataset's stored bytes at the current file
// position (which Close has already seeked to DataOff).
func (sd *stagedDataset) writeData(f *os.File) error {
	if sd.meta.Layout == layoutContiguous {
		if _, err := f.Write(sd.data); err != nil {
			return fmt.Errorf("sdf: write data for %q: %w", sd.meta.Name, err)
		}
		return nil
	}
	if sd.meta.Layout == layoutPacked {
		elem := int64(sd.meta.DType.Size())
		for _, r := range sd.meta.PackRuns {
			src := sd.data[r.startLin*elem : (r.startLin+r.count)*elem]
			if _, err := f.WriteAt(src, r.off); err != nil {
				return fmt.Errorf("sdf: write packed run of %q: %w", sd.meta.Name, err)
			}
		}
		return nil
	}
	cl := sd.layout.(*array.ChunkedLayout)
	chunkBytes := cl.ChunkSizeBytes()
	for i, off := range sd.meta.ChunkTable {
		if off == missingChunk {
			continue
		}
		src := sd.data[int64(i)*chunkBytes : (int64(i)+1)*chunkBytes]
		if _, err := f.WriteAt(src, off); err != nil {
			return fmt.Errorf("sdf: write chunk %d of %q: %w", i, sd.meta.Name, err)
		}
	}
	return nil
}

func align8(v int64) int64 {
	return (v + 7) &^ 7
}
