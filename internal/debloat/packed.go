package debloat

import (
	"fmt"

	"repro/internal/array"
	"repro/internal/sdf"
)

// WritePacked writes an element-granular debloated copy of one dataset:
// the output keeps exactly the approved indices, stored as packed runs
// of consecutive elements. Compared to WriteSubset's chunk granularity
// this removes every byte outside I'_Θ — maximal reduction at the cost
// of a run table proportional to the subset's fragmentation. (Paper
// §VI notes chunks are the practical unit of access; both granularities
// are provided so the trade-off is measurable.)
func WritePacked(srcPath, dstPath, dataset string, approx *array.IndexSet) (Stats, error) {
	var stats Stats
	src, err := sdf.Open(srcPath)
	if err != nil {
		return stats, err
	}
	defer src.Close()
	ds, err := src.Dataset(dataset)
	if err != nil {
		return stats, err
	}
	space := ds.Space()
	if approx.Space().Size() != space.Size() || approx.Space().Rank() != space.Rank() {
		return stats, fmt.Errorf("debloat: approximation space %v does not match dataset space %v",
			approx.Space(), space)
	}

	w := sdf.NewWriter(dstPath)
	dw, err := w.CreateDataset(dataset, space, ds.DType(), nil)
	if err != nil {
		return stats, err
	}
	if err := stampProvenance(dw, "element", approx.Len()); err != nil {
		return stats, err
	}
	// Copy only the approved values; unkept elements never reach the
	// output file regardless of staged contents.
	var copyErr error
	approx.Each(func(ix array.Index) bool {
		v, err := ds.ReadElement(ix)
		if err != nil {
			copyErr = fmt.Errorf("debloat: reading %v: %w", ix, err)
			return false
		}
		copyErr = dw.Set(ix, v)
		return copyErr == nil
	})
	if copyErr != nil {
		return stats, copyErr
	}
	if err := dw.PackElements(approx); err != nil {
		return stats, err
	}
	if err := w.Close(); err != nil {
		return stats, err
	}

	out, err := sdf.Open(dstPath)
	if err != nil {
		return stats, err
	}
	defer out.Close()
	ods, err := out.Dataset(dataset)
	if err != nil {
		return stats, err
	}
	stats = Stats{
		OriginalBytes:  ds.StoredBytes(),
		DebloatedBytes: ods.StoredBytes(),
		KeptIndices:    approx.Len(),
	}
	return stats, nil
}
