package debloat

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/array"
	"repro/internal/sdf"
)

// ctxFetcher records the context each FetchContext call received.
type ctxFetcher struct {
	inner *OriginFetcher
	mu    sync.Mutex
	ctxs  []context.Context
}

func (c *ctxFetcher) Fetch(dataset string, ix array.Index) (float64, error) {
	return c.FetchContext(context.Background(), dataset, ix)
}

func (c *ctxFetcher) FetchContext(ctx context.Context, dataset string, ix array.Index) (float64, error) {
	c.mu.Lock()
	c.ctxs = append(c.ctxs, ctx)
	c.mu.Unlock()
	return c.inner.FetchContext(ctx, dataset, ix)
}

func debloatedDataset(t *testing.T) (ds *sdf.Dataset, origin string, space array.Space, cleanup func()) {
	t.Helper()
	dir := t.TempDir()
	origin, space = buildOriginal(t, dir)
	approx := approxLowerTriangle(space)
	dst := filepath.Join(dir, "debloated.sdf")
	if _, err := WriteSubset(origin, dst, "data", approx, []int{8, 8}); err != nil {
		t.Fatal(err)
	}
	f, err := sdf.Open(dst)
	if err != nil {
		t.Fatal(err)
	}
	ds, err = f.Dataset("data")
	if err != nil {
		t.Fatal(err)
	}
	return ds, origin, space, func() { f.Close() }
}

func TestRuntimeRecoveredCounter(t *testing.T) {
	ds, origin, _, cleanup := debloatedDataset(t)
	defer cleanup()
	fetcher := NewOriginFetcher(origin)
	defer fetcher.Close()
	rt := NewRuntime(ds, fetcher)

	// Present element: no miss, no recovery.
	if _, err := rt.ReadElement(array.NewIndex(10, 5)); err != nil {
		t.Fatal(err)
	}
	if rt.Misses() != 0 || rt.Recovered() != 0 {
		t.Errorf("present read counted: misses=%d recovered=%d", rt.Misses(), rt.Recovered())
	}
	// Carved element: one miss, one recovery.
	if _, err := rt.ReadElement(array.NewIndex(0, 63)); err != nil {
		t.Fatal(err)
	}
	if rt.Misses() != 1 || rt.Recovered() != 1 {
		t.Errorf("misses=%d recovered=%d, want 1/1", rt.Misses(), rt.Recovered())
	}
}

func TestRuntimeContextReachesFetcher(t *testing.T) {
	ds, origin, space, cleanup := debloatedDataset(t)
	defer cleanup()

	type key struct{}
	ctx := context.WithValue(context.Background(), key{}, "marker")
	cf := &ctxFetcher{inner: NewOriginFetcher(origin)}
	defer cf.inner.Close()
	rt := NewRuntimeContext(ctx, ds, cf)

	v, err := rt.ReadElement(array.NewIndex(0, 63))
	if err != nil {
		t.Fatal(err)
	}
	lin, _ := space.Linear(array.NewIndex(0, 63))
	if v != float64(lin) {
		t.Errorf("recovered %v, want %v", v, float64(lin))
	}
	if len(cf.ctxs) != 1 {
		t.Fatalf("FetchContext called %d times, want 1", len(cf.ctxs))
	}
	if cf.ctxs[0].Value(key{}) != "marker" {
		t.Error("runtime did not pass its bound context to the fetcher")
	}
}

func TestRuntimeCanceledContextAbortsRecovery(t *testing.T) {
	ds, origin, _, cleanup := debloatedDataset(t)
	defer cleanup()
	fetcher := NewOriginFetcher(origin)
	defer fetcher.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rt := NewRuntimeContext(ctx, ds, fetcher)

	// Present data still reads locally.
	if _, err := rt.ReadElement(array.NewIndex(10, 5)); err != nil {
		t.Errorf("local read failed under canceled context: %v", err)
	}
	// Recovery must observe the cancellation.
	_, err := rt.ReadElement(array.NewIndex(0, 63))
	if !errors.Is(err, context.Canceled) {
		t.Errorf("recovery error = %v, want context.Canceled", err)
	}
	if rt.Recovered() != 0 {
		t.Errorf("Recovered = %d after failed recovery, want 0", rt.Recovered())
	}
}

// TestOriginFetcherConcurrent drives the lazily-opened origin fetcher
// from many goroutines at once; under -race this checks the
// double-checked open and the shared read lock.
func TestOriginFetcherConcurrent(t *testing.T) {
	ds, origin, space, cleanup := debloatedDataset(t)
	defer cleanup()
	fetcher := NewOriginFetcher(origin)
	defer fetcher.Close()
	rt := NewRuntime(ds, fetcher)

	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				// Column past the diagonal: carved for low rows.
				ix := array.NewIndex(g%4, 60+(i%4))
				v, err := rt.ReadElement(ix)
				if err != nil {
					errCh <- err
					return
				}
				lin, _ := space.Linear(ix)
				if v != float64(lin) {
					errCh <- errors.New("wrong recovered value")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if rt.Misses() != 400 || rt.Recovered() != 400 {
		t.Errorf("misses=%d recovered=%d, want 400/400", rt.Misses(), rt.Recovered())
	}
}

func TestOriginFetcherClosedErrors(t *testing.T) {
	ds, origin, _, cleanup := debloatedDataset(t)
	defer cleanup()
	fetcher := NewOriginFetcher(origin)
	fetcher.Close()
	rt := NewRuntime(ds, fetcher)
	if _, err := rt.ReadElement(array.NewIndex(0, 63)); err == nil {
		t.Error("closed fetcher recovered data")
	}
	if err := fetcher.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}
