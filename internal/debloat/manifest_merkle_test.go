package debloat

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/array"
	"repro/internal/sdf"
)

// writeMerkleOrigin materializes a small chunked origin to embed.
func writeMerkleOrigin(t *testing.T, dims, chunk []int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "origin.sdf")
	space := array.MustSpace(dims...)
	w := sdf.NewWriter(path)
	dw, err := w.CreateDataset("data", space, array.Float64, chunk)
	if err != nil {
		t.Fatal(err)
	}
	if err := dw.Fill(func(ix array.Index) float64 {
		lin, _ := space.Linear(ix)
		return float64(lin)
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestManifestMerkleRoundTrip(t *testing.T) {
	origin := writeMerkleOrigin(t, []int{32, 32}, []int{8, 8})
	m := NewManifest("p", "data", []int{32, 32}, "chunk", []int{8, 8}, twoHulls(t), Stats{}, 0)
	if err := m.EmbedMerkle(origin); err != nil {
		t.Fatal(err)
	}
	if m.Merkle == nil || m.Merkle.Algo != sdf.MerkleAlgo || m.Merkle.Leaves != 16 {
		t.Fatalf("embedded section = %+v", m.Merkle)
	}

	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := back.MerkleSpec()
	if err != nil {
		t.Fatal(err)
	}
	if spec == nil {
		t.Fatal("round-tripped manifest lost its merkle section")
	}
	if spec.RootHex() != m.Merkle.Root || spec.Leaves != 16 {
		t.Fatalf("spec = %+v, want root %s", spec, m.Merkle.Root)
	}
	// The embedded root equals a direct rebuild over the same bytes.
	f, err := sdf.Open(origin)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, err := f.Dataset("data")
	if err != nil {
		t.Fatal(err)
	}
	tree, err := sdf.BuildDatasetMerkle(ds, sdf.ServingChunk(ds))
	if err != nil {
		t.Fatal(err)
	}
	if tree.SpecOf(ds).RootHex() != spec.RootHex() {
		t.Fatal("manifest root differs from a direct rebuild")
	}
}

// TestManifestWithoutMerkleStaysLoadable pins backward compatibility:
// a manifest written before verified recovery (no "merkle" key) loads
// and reports no spec, without error.
func TestManifestWithoutMerkleStaysLoadable(t *testing.T) {
	m := NewManifest("p", "data", []int{16, 16}, "chunk", []int{8, 8}, twoHulls(t), Stats{}, 0)
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "merkle") {
		t.Fatal("merkle key written without EmbedMerkle")
	}
	back, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := back.MerkleSpec()
	if err != nil {
		t.Fatal(err)
	}
	if spec != nil {
		t.Fatalf("spec from merkle-less manifest = %+v, want nil", spec)
	}
}

// TestManifestMerkleTamperFailsAtLoad pins that a manipulated merkle
// section is rejected when the spec is decoded — before any fetch
// could trust it — for every field an attacker could touch.
func TestManifestMerkleTamperFailsAtLoad(t *testing.T) {
	origin := writeMerkleOrigin(t, []int{32, 32}, []int{8, 8})
	m := NewManifest("p", "data", []int{32, 32}, "chunk", []int{8, 8}, twoHulls(t), Stats{}, 0)
	if err := m.EmbedMerkle(origin); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}

	mutate := func(t *testing.T, change func(*Manifest)) {
		t.Helper()
		back, err := LoadManifest(path)
		if err != nil {
			t.Fatal(err)
		}
		change(back)
		// Round-trip through JSON like a real edited file would.
		data, err := json.Marshal(back)
		if err != nil {
			t.Fatal(err)
		}
		edited := &Manifest{}
		if err := json.Unmarshal(data, edited); err != nil {
			t.Fatal(err)
		}
		if _, err := edited.MerkleSpec(); err == nil {
			t.Fatal("tampered merkle section accepted")
		}
	}
	t.Run("truncated root", func(t *testing.T) {
		mutate(t, func(m *Manifest) { m.Merkle.Root = m.Merkle.Root[:20] })
	})
	t.Run("garbage root", func(t *testing.T) {
		mutate(t, func(m *Manifest) { m.Merkle.Root = strings.Repeat("zz", 32) })
	})
	t.Run("wrong algo", func(t *testing.T) {
		mutate(t, func(m *Manifest) { m.Merkle.Algo = "md5/legacy" })
	})
	t.Run("zero leaves", func(t *testing.T) {
		mutate(t, func(m *Manifest) { m.Merkle.Leaves = 0 })
	})
	t.Run("chunk mismatch", func(t *testing.T) {
		// A chunk shape that cannot produce the claimed leaf count over
		// the manifest's dims is inconsistent geometry.
		mutate(t, func(m *Manifest) { m.Merkle.Chunk = []int{32, 32} })
	})
	t.Run("empty chunk", func(t *testing.T) {
		mutate(t, func(m *Manifest) { m.Merkle.Chunk = nil })
	})
}
