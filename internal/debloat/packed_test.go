package debloat

import (
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/array"
	"repro/internal/sdf"
	"repro/internal/workload"
)

func TestWritePackedExactReduction(t *testing.T) {
	dir := t.TempDir()
	orig, space := buildOriginal(t, dir)
	approx := approxLowerTriangle(space)
	dst := filepath.Join(dir, "packed.sdf")

	stats, err := WritePacked(orig, dst, "data", approx)
	if err != nil {
		t.Fatal(err)
	}
	// Element-granular: stored bytes are exactly |approx| elements.
	if stats.DebloatedBytes != int64(approx.Len())*8 {
		t.Errorf("DebloatedBytes = %d, want %d", stats.DebloatedBytes, approx.Len()*8)
	}
	wantReduction := 1 - float64(approx.Len())/float64(space.Size())
	if got := stats.Reduction(); got < wantReduction-1e-9 || got > wantReduction+1e-9 {
		t.Errorf("Reduction = %v, want %v", got, wantReduction)
	}

	f, err := sdf.Open(dst)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, _ := f.Dataset("data")
	// Kept values exact; dropped values missing.
	n := 0
	space.Each(func(ix array.Index) bool {
		v, err := ds.ReadElement(ix)
		lin, _ := space.Linear(ix)
		if approx.Contains(ix) {
			if err != nil || v != float64(lin) {
				t.Fatalf("kept %v = %v, %v", ix, v, err)
			}
		} else if !errors.Is(err, sdf.ErrDataMissing) {
			t.Fatalf("dropped %v error = %v", ix, err)
		}
		n++
		return n < 2000
	})
}

func TestPackedBeatsChunkedReduction(t *testing.T) {
	// For the same approximation, element granularity must reduce at
	// least as much as chunk granularity.
	dir := t.TempDir()
	orig, space := buildOriginal(t, dir)
	approx := approxLowerTriangle(space)

	chunked := filepath.Join(dir, "chunked.sdf")
	sChunk, err := WriteSubset(orig, chunked, "data", approx, []int{8, 8})
	if err != nil {
		t.Fatal(err)
	}
	packed := filepath.Join(dir, "packed.sdf")
	sPack, err := WritePacked(orig, packed, "data", approx)
	if err != nil {
		t.Fatal(err)
	}
	if sPack.DebloatedBytes >= sChunk.DebloatedBytes {
		t.Errorf("packed %d bytes not below chunked %d", sPack.DebloatedBytes, sChunk.DebloatedBytes)
	}
	_ = space
}

func TestPackedRuntimeServesProgram(t *testing.T) {
	dir := t.TempDir()
	orig, _ := buildOriginal(t, dir)
	p := workload.MustCS(2, 64)
	truth, err := workload.GroundTruth(p)
	if err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(dir, "packed.sdf")
	if _, err := WritePacked(orig, dst, "data", truth); err != nil {
		t.Fatal(err)
	}
	f, err := sdf.Open(dst)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, _ := f.Dataset("data")
	rt := NewRuntime(ds, nil)
	// Every supported run works against the packed file.
	for _, v := range [][]float64{{1, 1}, {0, 2}, {3, 9}} {
		if err := p.Run(v, &workload.Env{Acc: rt}); err != nil {
			t.Fatalf("run %v: %v", v, err)
		}
	}
	if rt.Misses() != 0 {
		t.Errorf("misses = %d", rt.Misses())
	}
}

func TestWritePackedSpaceMismatch(t *testing.T) {
	dir := t.TempDir()
	orig, _ := buildOriginal(t, dir)
	wrong := array.NewIndexSet(array.MustSpace(8, 8))
	wrong.AddLinear(1)
	if _, err := WritePacked(orig, filepath.Join(dir, "x.sdf"), "data", wrong); err == nil {
		t.Error("space mismatch should error")
	}
}
