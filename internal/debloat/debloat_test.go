package debloat

import (
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/array"
	"repro/internal/sdf"
	"repro/internal/workload"
)

// buildOriginal writes a 64x64 float64 file whose values equal the
// row-major linear index.
func buildOriginal(t *testing.T, dir string) (path string, space array.Space) {
	t.Helper()
	space = array.MustSpace(64, 64)
	path = filepath.Join(dir, "original.sdf")
	w := sdf.NewWriter(path)
	dw, err := w.CreateDataset("data", space, array.Float64, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = dw.Fill(func(ix array.Index) float64 {
		lin, _ := space.Linear(ix)
		return float64(lin)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path, space
}

// approxLowerTriangle keeps indices with row >= col.
func approxLowerTriangle(space array.Space) *array.IndexSet {
	set := array.NewIndexSet(space)
	space.Each(func(ix array.Index) bool {
		if ix[0] >= ix[1] {
			set.Add(ix)
		}
		return true
	})
	return set
}

func TestWriteSubsetStatsAndValues(t *testing.T) {
	dir := t.TempDir()
	orig, space := buildOriginal(t, dir)
	approx := approxLowerTriangle(space)
	dst := filepath.Join(dir, "debloated.sdf")

	stats, err := WriteSubset(orig, dst, "data", approx, []int{8, 8})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalChunks != 64 {
		t.Errorf("TotalChunks = %d, want 64", stats.TotalChunks)
	}
	// Lower triangle of an 8x8 chunk grid: 36 chunks touch it.
	if stats.KeptChunks != 36 {
		t.Errorf("KeptChunks = %d, want 36", stats.KeptChunks)
	}
	if stats.Reduction() <= 0.3 || stats.Reduction() >= 0.6 {
		t.Errorf("Reduction = %v, want ~0.44", stats.Reduction())
	}
	if stats.KeptIndices != approx.Len() {
		t.Errorf("KeptIndices = %d, want %d", stats.KeptIndices, approx.Len())
	}

	// The debloated file must serve every approved element with the
	// original value.
	f, err := sdf.Open(dst)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, err := f.Dataset("data")
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Debloated() {
		t.Error("output dataset not marked debloated")
	}
	checked := 0
	approx.Each(func(ix array.Index) bool {
		v, err := ds.ReadElement(ix)
		if err != nil {
			t.Fatalf("ReadElement(%v): %v", ix, err)
		}
		lin, _ := space.Linear(ix)
		if v != float64(lin) {
			t.Fatalf("value at %v = %v, want %v", ix, v, lin)
		}
		checked++
		return checked < 500
	})

	// Provenance stamps are present.
	if v, ok := ds.Attr("kondo.debloated"); !ok || v != "true" {
		t.Errorf("kondo.debloated attr = %q, %v", v, ok)
	}
	if v, ok := ds.Attr("kondo.granularity"); !ok || v != "chunk" {
		t.Errorf("kondo.granularity attr = %q, %v", v, ok)
	}

	// A far-away carved element must raise data-missing.
	if _, err := ds.ReadElement(array.NewIndex(0, 63)); !errors.Is(err, sdf.ErrDataMissing) {
		t.Errorf("carved element error = %v, want data missing", err)
	}

	// The file on disk must actually be smaller.
	so, sd, err := FileSizes(orig, dst)
	if err != nil {
		t.Fatal(err)
	}
	if sd >= so {
		t.Errorf("debloated file (%d) not smaller than original (%d)", sd, so)
	}
}

func TestWriteSubsetSpaceMismatch(t *testing.T) {
	dir := t.TempDir()
	orig, _ := buildOriginal(t, dir)
	wrong := array.NewIndexSet(array.MustSpace(32, 32))
	wrong.AddLinear(0)
	if _, err := WriteSubset(orig, filepath.Join(dir, "x.sdf"), "data", wrong, []int{8, 8}); err == nil {
		t.Error("space mismatch should error")
	}
	ok := array.NewIndexSet(array.MustSpace(64, 64))
	ok.AddLinear(0)
	if _, err := WriteSubset(orig, filepath.Join(dir, "y.sdf"), "nope", ok, []int{8, 8}); err == nil {
		t.Error("missing dataset should error")
	}
}

func TestRuntimeMissRaisesWithoutFetcher(t *testing.T) {
	dir := t.TempDir()
	orig, space := buildOriginal(t, dir)
	approx := approxLowerTriangle(space)
	dst := filepath.Join(dir, "debloated.sdf")
	if _, err := WriteSubset(orig, dst, "data", approx, []int{8, 8}); err != nil {
		t.Fatal(err)
	}
	f, err := sdf.Open(dst)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, _ := f.Dataset("data")
	rt := NewRuntime(ds, nil)

	if _, err := rt.ReadElement(array.NewIndex(10, 5)); err != nil {
		t.Errorf("present element errored: %v", err)
	}
	if _, err := rt.ReadElement(array.NewIndex(0, 63)); !errors.Is(err, ErrDataMissing) {
		t.Errorf("missing element error = %v", err)
	}
	if rt.Misses() != 1 {
		t.Errorf("Misses = %d, want 1", rt.Misses())
	}
}

func TestRuntimeFetcherRecovers(t *testing.T) {
	dir := t.TempDir()
	orig, space := buildOriginal(t, dir)
	approx := approxLowerTriangle(space)
	dst := filepath.Join(dir, "debloated.sdf")
	if _, err := WriteSubset(orig, dst, "data", approx, []int{8, 8}); err != nil {
		t.Fatal(err)
	}
	f, err := sdf.Open(dst)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, _ := f.Dataset("data")
	fetcher := NewOriginFetcher(orig)
	defer fetcher.Close()
	rt := NewRuntime(ds, fetcher)

	// A carved-away element is recovered with the right value.
	v, err := rt.ReadElement(array.NewIndex(0, 63))
	if err != nil {
		t.Fatal(err)
	}
	lin, _ := space.Linear(array.NewIndex(0, 63))
	if v != float64(lin) {
		t.Errorf("recovered value = %v, want %v", v, lin)
	}
	if rt.Misses() != 1 {
		t.Errorf("Misses = %d, want 1", rt.Misses())
	}

	// A slab crossing present and missing chunks reads correctly.
	vals, err := rt.ReadSlab([]int{0, 56}, []int{8, 8})
	if err != nil {
		t.Fatal(err)
	}
	sel := sdf.Slab([]int{0, 56}, []int{8, 8})
	i := 0
	sel.Each(func(ix array.Index) bool {
		lin, _ := space.Linear(ix)
		if vals[i] != float64(lin) {
			t.Fatalf("slab value at %v = %v, want %v", ix, vals[i], lin)
		}
		i++
		return true
	})
}

// TestRuntimeServesProgramIdentically is the paper's central
// correctness property (§III): running a program against D_Θ yields
// exactly the same values as against D, provided I'_Θ covers the
// accessed indices.
func TestRuntimeServesProgramIdentically(t *testing.T) {
	dir := t.TempDir()
	space := array.MustSpace(64, 64)
	orig := filepath.Join(dir, "orig.sdf")
	w := sdf.NewWriter(orig)
	dw, err := w.CreateDataset("data", space, array.Float64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := dw.Fill(func(ix array.Index) float64 {
		lin, _ := space.Linear(ix)
		return float64(lin) * 1.5
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	p := workload.MustCS(2, 64)
	truth, err := workload.GroundTruth(p)
	if err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(dir, "deb.sdf")
	if _, err := WriteSubset(orig, dst, "data", truth, []int{8, 8}); err != nil {
		t.Fatal(err)
	}

	// Run the program against both files and compare every read.
	of, err := sdf.Open(orig)
	if err != nil {
		t.Fatal(err)
	}
	defer of.Close()
	ods, _ := of.Dataset("data")

	df, err := sdf.Open(dst)
	if err != nil {
		t.Fatal(err)
	}
	defer df.Close()
	dds, _ := df.Dataset("data")
	rt := NewRuntime(dds, nil)

	for _, v := range [][]float64{{1, 1}, {0, 3}, {2, 7}, {5, 5}} {
		iv, err := workload.RunOnVirtual(p, v)
		if err != nil {
			t.Fatal(err)
		}
		iv.Each(func(ix array.Index) bool {
			want, err := ods.ReadElement(ix)
			if err != nil {
				t.Fatalf("original read %v: %v", ix, err)
			}
			got, err := rt.ReadElement(ix)
			if err != nil {
				t.Fatalf("debloated read %v: %v", ix, err)
			}
			if got != want {
				t.Fatalf("value at %v: debloated %v != original %v", ix, got, want)
			}
			return true
		})
	}
	if rt.Misses() != 0 {
		t.Errorf("full-truth debloat produced %d misses", rt.Misses())
	}
}
