// Package debloat materializes the debloated data subset D_Θ (paper
// Def. 1): given the approximated index subset I'_Θ produced by the
// carver, it writes a new self-describing data file that keeps only
// the chunks containing approved indices, plus a manifest describing
// what was carved. It also provides the user-side runtime that serves
// reads from the debloated file, surfaces the "data missing" exception
// for carved-away accesses, and can optionally recover missing offsets
// from a remote source (paper §VI).
package debloat

import (
	"fmt"
	"os"

	"repro/internal/array"
	"repro/internal/sdf"
)

// Stats summarizes one debloating materialization — the quantities
// behind Fig. 9's data-reduction numbers.
type Stats struct {
	// OriginalBytes and DebloatedBytes are the stored data-region
	// sizes before and after carving.
	OriginalBytes, DebloatedBytes int64
	// TotalChunks and KeptChunks count the chunk table.
	TotalChunks, KeptChunks int64
	// KeptIndices is |I'_Θ|.
	KeptIndices int
}

// Reduction returns the fraction of data bytes removed.
func (s Stats) Reduction() float64 {
	if s.OriginalBytes == 0 {
		return 0
	}
	return 1 - float64(s.DebloatedBytes)/float64(s.OriginalBytes)
}

// WriteSubset writes a debloated copy of one dataset of the source
// file. The output dataset is chunked with the given chunk shape
// (which becomes the debloating granularity: a chunk is kept iff it
// contains at least one approved index), carrying the same values for
// all kept elements.
func WriteSubset(srcPath, dstPath, dataset string, approx *array.IndexSet, chunk []int) (Stats, error) {
	var stats Stats
	src, err := sdf.Open(srcPath)
	if err != nil {
		return stats, err
	}
	defer src.Close()
	ds, err := src.Dataset(dataset)
	if err != nil {
		return stats, err
	}
	space := ds.Space()
	if approx.Space().Size() != space.Size() || approx.Space().Rank() != space.Rank() {
		return stats, fmt.Errorf("debloat: approximation space %v does not match dataset space %v",
			approx.Space(), space)
	}

	cl, err := array.NewChunkedLayout(space, ds.DType(), chunk)
	if err != nil {
		return stats, err
	}

	// Which chunks hold approved indices?
	keep := make(map[int64]bool)
	var keepErr error
	approx.Each(func(ix array.Index) bool {
		cc, _, err := cl.ChunkCoord(ix)
		if err != nil {
			keepErr = err
			return false
		}
		lin, err := cl.ChunkLinear(cc)
		if err != nil {
			keepErr = err
			return false
		}
		keep[lin] = true
		return true
	})
	if keepErr != nil {
		return stats, keepErr
	}

	w := sdf.NewWriter(dstPath)
	dw, err := w.CreateDataset(dataset, space, ds.DType(), chunk)
	if err != nil {
		return stats, err
	}
	if err := stampProvenance(dw, "chunk", approx.Len()); err != nil {
		return stats, err
	}
	// Copy values of kept chunks only; skipped chunks stay zero and
	// are omitted from the file anyway.
	grid := cl.Grid()
	shape := cl.ChunkShape()
	var copyErr error
	grid.Each(func(cc array.Index) bool {
		lin, err := cl.ChunkLinear(cc)
		if err != nil {
			copyErr = err
			return false
		}
		if !keep[lin] {
			return true
		}
		copyErr = copyChunk(ds, dw, cc, shape, space)
		return copyErr == nil
	})
	if copyErr != nil {
		return stats, copyErr
	}
	if err := dw.OmitChunksExcept(keep); err != nil {
		return stats, err
	}
	if err := w.Close(); err != nil {
		return stats, err
	}

	out, err := sdf.Open(dstPath)
	if err != nil {
		return stats, err
	}
	defer out.Close()
	ods, err := out.Dataset(dataset)
	if err != nil {
		return stats, err
	}
	stats = Stats{
		OriginalBytes:  ds.StoredBytes(),
		DebloatedBytes: ods.StoredBytes(),
		TotalChunks:    cl.NumChunks(),
		KeptChunks:     int64(len(keep)),
		KeptIndices:    approx.Len(),
	}
	return stats, nil
}

// copyChunk copies the logical elements of one chunk from the source
// dataset into the staged destination.
func copyChunk(src *sdf.Dataset, dst *sdf.DatasetWriter, cc array.Index, shape []int, space array.Space) error {
	start := make([]int, len(cc))
	count := make([]int, len(cc))
	for k := range cc {
		start[k] = cc[k] * shape[k]
		count[k] = shape[k]
		if start[k]+count[k] > space.Dim(k) {
			count[k] = space.Dim(k) - start[k] // edge chunk clip
		}
	}
	sel := sdf.Slab(start, count)
	vals, err := src.ReadHyperslab(sel)
	if err != nil {
		return fmt.Errorf("debloat: reading chunk %v: %w", cc, err)
	}
	i := 0
	var setErr error
	sel.Each(func(ix array.Index) bool {
		setErr = dst.Set(ix, vals[i])
		i++
		return setErr == nil
	})
	return setErr
}

// stampProvenance attaches the debloating provenance attributes to a
// staged output dataset.
func stampProvenance(dw *sdf.DatasetWriter, granularity string, kept int) error {
	for _, kv := range [][2]string{
		{"kondo.debloated", "true"},
		{"kondo.granularity", granularity},
		{"kondo.kept_indices", fmt.Sprint(kept)},
	} {
		if err := dw.SetAttr(kv[0], kv[1]); err != nil {
			return err
		}
	}
	return nil
}

// FileSizes returns the on-disk sizes of the original and debloated
// files — what a container user actually downloads.
func FileSizes(srcPath, dstPath string) (orig, debloated int64, err error) {
	si, err := os.Stat(srcPath)
	if err != nil {
		return 0, 0, err
	}
	di, err := os.Stat(dstPath)
	if err != nil {
		return 0, 0, err
	}
	return si.Size(), di.Size(), nil
}
