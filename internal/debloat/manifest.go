package debloat

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/array"
	"repro/internal/geom"
	"repro/internal/hull"
)

// Manifest records how a debloated data file was produced: the carved
// hull set, the granularity, and the size accounting. It is the
// "audited information" of paper §VI that a container runtime can use
// — e.g. to decide, before touching the file, whether an access will
// need the remote-fetch path — and it makes the carved subset
// reproducible without re-running the fuzzer.
type Manifest struct {
	// Tool identifies the producer.
	Tool string `json:"tool"`
	// Program is the application the subset was carved for.
	Program string `json:"program"`
	// Dataset is the dataset name inside the data file.
	Dataset string `json:"dataset"`
	// Dims are the data array extents.
	Dims []int `json:"dims"`
	// Granularity is "chunk" or "element".
	Granularity string `json:"granularity"`
	// Chunk is the chunk shape for chunk-granular debloating.
	Chunk []int `json:"chunk,omitempty"`
	// Hulls are the carved convex hulls, as vertex lists.
	Hulls [][][]float64 `json:"hulls"`
	// KeptIndices is |I'_Θ|.
	KeptIndices int `json:"kept_indices"`
	// Evaluations is the number of debloat tests the fuzz campaign
	// ran.
	Evaluations int `json:"evaluations"`
	// OriginalBytes and DebloatedBytes mirror Stats.
	OriginalBytes  int64 `json:"original_bytes"`
	DebloatedBytes int64 `json:"debloated_bytes"`
}

// NewManifest assembles a manifest from pipeline outputs.
func NewManifest(program, dataset string, dims []int, granularity string, chunk []int,
	hulls []*hull.Hull, stats Stats, evaluations int) *Manifest {

	m := &Manifest{
		Tool:           "kondo-repro",
		Program:        program,
		Dataset:        dataset,
		Dims:           append([]int(nil), dims...),
		Granularity:    granularity,
		Chunk:          append([]int(nil), chunk...),
		KeptIndices:    stats.KeptIndices,
		Evaluations:    evaluations,
		OriginalBytes:  stats.OriginalBytes,
		DebloatedBytes: stats.DebloatedBytes,
	}
	for _, h := range hulls {
		var verts [][]float64
		for _, v := range h.Vertices() {
			verts = append(verts, append([]float64(nil), v...))
		}
		m.Hulls = append(m.Hulls, verts)
	}
	return m
}

// Save writes the manifest as JSON.
func (m *Manifest) Save(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("debloat: encoding manifest: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("debloat: writing manifest: %w", err)
	}
	return nil
}

// LoadManifest reads a manifest written by Save.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("debloat: reading manifest: %w", err)
	}
	m := &Manifest{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, fmt.Errorf("debloat: decoding manifest %s: %w", path, err)
	}
	return m, nil
}

// RebuildHulls reconstructs the hull objects from the manifest.
func (m *Manifest) RebuildHulls() ([]*hull.Hull, error) {
	out := make([]*hull.Hull, 0, len(m.Hulls))
	for i, verts := range m.Hulls {
		pts := make([]geom.Point, len(verts))
		for j, v := range verts {
			pts[j] = geom.Point(v)
		}
		h, err := hull.New(pts)
		if err != nil {
			return nil, fmt.Errorf("debloat: manifest hull %d: %w", i, err)
		}
		out = append(out, h)
	}
	return out, nil
}

// Covers reports whether the carved hull set contains the index — the
// manifest-level answer to "will this access need the remote-fetch
// path?".
func (m *Manifest) Covers(ix array.Index) (bool, error) {
	hulls, err := m.RebuildHulls()
	if err != nil {
		return false, err
	}
	p := make(geom.Point, len(ix))
	for k, v := range ix {
		p[k] = float64(v)
	}
	for _, h := range hulls {
		if h.Contains(p) {
			return true, nil
		}
	}
	return false, nil
}
