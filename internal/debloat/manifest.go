package debloat

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/array"
	"repro/internal/geom"
	"repro/internal/hull"
	"repro/internal/sdf"
)

// Manifest records how a debloated data file was produced: the carved
// hull set, the granularity, and the size accounting. It is the
// "audited information" of paper §VI that a container runtime can use
// — e.g. to decide, before touching the file, whether an access will
// need the remote-fetch path — and it makes the carved subset
// reproducible without re-running the fuzzer.
type Manifest struct {
	// Tool identifies the producer.
	Tool string `json:"tool"`
	// Program is the application the subset was carved for.
	Program string `json:"program"`
	// Dataset is the dataset name inside the data file.
	Dataset string `json:"dataset"`
	// Dims are the data array extents.
	Dims []int `json:"dims"`
	// Granularity is "chunk" or "element".
	Granularity string `json:"granularity"`
	// Chunk is the chunk shape for chunk-granular debloating.
	Chunk []int `json:"chunk,omitempty"`
	// Hulls are the carved convex hulls, as vertex lists.
	Hulls [][][]float64 `json:"hulls"`
	// KeptIndices is |I'_Θ|.
	KeptIndices int `json:"kept_indices"`
	// Evaluations is the number of debloat tests the fuzz campaign
	// ran.
	Evaluations int `json:"evaluations"`
	// OriginalBytes and DebloatedBytes mirror Stats.
	OriginalBytes  int64 `json:"original_bytes"`
	DebloatedBytes int64 `json:"debloated_bytes"`
	// Merkle, when present, anchors verified recovery: the root of a
	// SHA-256 Merkle tree over the ORIGINAL dataset's serving chunks,
	// plus the tree parameters a client needs to verify inclusion
	// proofs (DESIGN.md §15). The section is additive — old readers
	// skip the unknown key, and manifests written before it decode
	// with a nil pointer — so manifest compatibility is unchanged in
	// both directions.
	Merkle *MerkleSection `json:"merkle,omitempty"`
}

// MerkleSection is the manifest encoding of an sdf.MerkleSpec.
type MerkleSection struct {
	// Algo names the tree construction (sdf.MerkleAlgo).
	Algo string `json:"algo"`
	// Root is the tree root in lowercase hex.
	Root string `json:"root"`
	// Leaves is the serving-chunk (leaf) count.
	Leaves int64 `json:"leaves"`
	// Chunk is the serving chunk shape the tree was built over; with
	// the manifest's Dims it pins the full verification geometry.
	Chunk []int `json:"chunk"`
}

// EmbedMerkle builds the Merkle tree over the manifest's dataset in
// the ORIGINAL (pre-debloat) data file at dataPath — the bytes an
// origin server will later serve — and records its root and
// parameters in the manifest. Call it at debloat time, before the
// original is replaced by the carved file.
func (m *Manifest) EmbedMerkle(dataPath string) error {
	f, err := sdf.Open(dataPath)
	if err != nil {
		return fmt.Errorf("debloat: opening original for merkle: %w", err)
	}
	defer f.Close()
	ds, err := f.Dataset(m.Dataset)
	if err != nil {
		return fmt.Errorf("debloat: merkle dataset: %w", err)
	}
	chunk := sdf.ServingChunk(ds)
	tree, err := sdf.BuildDatasetMerkle(ds, chunk)
	if err != nil {
		return fmt.Errorf("debloat: building merkle tree: %w", err)
	}
	spec := tree.SpecOf(ds)
	if err := spec.Validate(); err != nil {
		return fmt.Errorf("debloat: built merkle spec invalid: %w", err)
	}
	m.Merkle = &MerkleSection{
		Algo:   spec.Algo,
		Root:   spec.RootHex(),
		Leaves: spec.Leaves,
		Chunk:  append([]int(nil), spec.Chunk...),
	}
	return nil
}

// MerkleSpec decodes and validates the manifest's merkle section into
// the client's trusted verification spec. It returns (nil, nil) when
// the manifest has no section (pre-verification manifests stay
// loadable), and an error when the section is present but malformed or
// inconsistent with the manifest's own geometry — a tampered manifest
// must fail at load, not at first verified fetch.
func (m *Manifest) MerkleSpec() (*sdf.MerkleSpec, error) {
	if m.Merkle == nil {
		return nil, nil
	}
	root, err := sdf.ParseMerkleRoot(m.Merkle.Root)
	if err != nil {
		return nil, fmt.Errorf("debloat: manifest merkle section: %w", err)
	}
	spec := &sdf.MerkleSpec{
		Algo:   m.Merkle.Algo,
		Root:   root,
		Leaves: m.Merkle.Leaves,
		Dims:   append([]int(nil), m.Dims...),
		Chunk:  append([]int(nil), m.Merkle.Chunk...),
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("debloat: manifest merkle section: %w", err)
	}
	return spec, nil
}

// NewManifest assembles a manifest from pipeline outputs.
func NewManifest(program, dataset string, dims []int, granularity string, chunk []int,
	hulls []*hull.Hull, stats Stats, evaluations int) *Manifest {

	m := &Manifest{
		Tool:           "kondo-repro",
		Program:        program,
		Dataset:        dataset,
		Dims:           append([]int(nil), dims...),
		Granularity:    granularity,
		Chunk:          append([]int(nil), chunk...),
		KeptIndices:    stats.KeptIndices,
		Evaluations:    evaluations,
		OriginalBytes:  stats.OriginalBytes,
		DebloatedBytes: stats.DebloatedBytes,
	}
	for _, h := range hulls {
		var verts [][]float64
		for _, v := range h.Vertices() {
			verts = append(verts, append([]float64(nil), v...))
		}
		m.Hulls = append(m.Hulls, verts)
	}
	return m
}

// Save writes the manifest as JSON.
func (m *Manifest) Save(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("debloat: encoding manifest: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("debloat: writing manifest: %w", err)
	}
	return nil
}

// LoadManifest reads a manifest written by Save.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("debloat: reading manifest: %w", err)
	}
	m := &Manifest{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, fmt.Errorf("debloat: decoding manifest %s: %w", path, err)
	}
	return m, nil
}

// RebuildHulls reconstructs the hull objects from the manifest.
func (m *Manifest) RebuildHulls() ([]*hull.Hull, error) {
	out := make([]*hull.Hull, 0, len(m.Hulls))
	for i, verts := range m.Hulls {
		pts := make([]geom.Point, len(verts))
		for j, v := range verts {
			pts[j] = geom.Point(v)
		}
		h, err := hull.New(pts)
		if err != nil {
			return nil, fmt.Errorf("debloat: manifest hull %d: %w", i, err)
		}
		out = append(out, h)
	}
	return out, nil
}

// Covers reports whether the carved hull set contains the index — the
// manifest-level answer to "will this access need the remote-fetch
// path?".
func (m *Manifest) Covers(ix array.Index) (bool, error) {
	hulls, err := m.RebuildHulls()
	if err != nil {
		return false, err
	}
	p := make(geom.Point, len(ix))
	for k, v := range ix {
		p[k] = float64(v)
	}
	for _, h := range hulls {
		if h.Contains(p) {
			return true, nil
		}
	}
	return false, nil
}
