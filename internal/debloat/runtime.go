package debloat

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/array"
	"repro/internal/obs"
	"repro/internal/sdf"
)

// ErrDataMissing is re-exported so runtime users don't need to import
// the format layer to classify the exception.
var ErrDataMissing = sdf.ErrDataMissing

// Fetcher recovers element values that were carved away. It models the
// remote-server recovery path of paper §VI: "a container runtime can
// use audited information to pull missing data offsets from a remote
// server, when requested."
type Fetcher interface {
	// Fetch returns the value of one missing element.
	Fetch(dataset string, ix array.Index) (float64, error)
}

// ContextFetcher is a Fetcher whose fetches honor a context: network
// fetchers implement it so a canceled run or a dead origin server
// stops a recovery instead of hanging the debloated runtime.
type ContextFetcher interface {
	Fetcher
	FetchContext(ctx context.Context, dataset string, ix array.Index) (float64, error)
}

// OriginFetcher serves misses from the original (un-debloated) file —
// the repository copy the container was built from. It is safe for
// concurrent use: the origin is opened once and reads go through the
// stateless ReadAt path, so concurrent misses proceed in parallel
// under a shared read lock instead of convoying behind one mutex.
type OriginFetcher struct {
	path string

	mu     sync.RWMutex
	file   *sdf.File
	closed bool
}

// NewOriginFetcher returns a fetcher reading from the original file at
// path. The file is opened lazily on first miss.
func NewOriginFetcher(path string) *OriginFetcher {
	return &OriginFetcher{path: path}
}

// open returns the origin file, opening it on first use.
func (f *OriginFetcher) open() (*sdf.File, error) {
	f.mu.RLock()
	file := f.file
	f.mu.RUnlock()
	if file != nil {
		return file, nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, fmt.Errorf("debloat: origin fetcher closed")
	}
	if f.file == nil {
		file, err := sdf.Open(f.path)
		if err != nil {
			return nil, fmt.Errorf("debloat: opening origin: %w", err)
		}
		f.file = file
	}
	return f.file, nil
}

// Fetch implements Fetcher.
func (f *OriginFetcher) Fetch(dataset string, ix array.Index) (float64, error) {
	return f.FetchContext(context.Background(), dataset, ix)
}

// FetchContext implements ContextFetcher. The read itself is local
// disk I/O; the context is only consulted before issuing it.
func (f *OriginFetcher) FetchContext(ctx context.Context, dataset string, ix array.Index) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	file, err := f.open()
	if err != nil {
		return 0, err
	}
	// Hold the read lock across the read so a concurrent Close cannot
	// yank the descriptor mid-I/O; readers do not block each other.
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.file == nil {
		return 0, fmt.Errorf("debloat: origin fetcher closed")
	}
	ds, err := file.Dataset(dataset)
	if err != nil {
		return 0, err
	}
	return ds.ReadElement(ix)
}

// Close releases the origin file if it was opened. Fetches after
// Close fail rather than silently reopening the file.
func (f *OriginFetcher) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
	if f.file == nil {
		return nil
	}
	err := f.file.Close()
	f.file = nil
	return err
}

// Runtime serves a program's reads from a debloated file. Reads of
// carved-away data raise the data-missing exception, or are recovered
// through the fetcher when one is attached. Misses are counted either
// way, giving the §V-D1 missed-access telemetry. A Runtime is safe
// for concurrent use when its fetcher is.
type Runtime struct {
	ds      *sdf.Dataset
	fetcher Fetcher
	name    string
	ctx     context.Context

	misses    atomic.Int64
	recovered atomic.Int64

	// Registry instruments resolved once at construction; nil (a no-op)
	// when the context carries no registry.
	mMisses    *obs.Counter
	mRecovered *obs.Counter
}

// NewRuntime returns a runtime over one dataset of an opened debloated
// file. fetcher may be nil, in which case misses are fatal.
func NewRuntime(ds *sdf.Dataset, fetcher Fetcher) *Runtime {
	return NewRuntimeContext(context.Background(), ds, fetcher)
}

// NewRuntimeContext returns a runtime whose recoveries run under ctx:
// when the fetcher is a ContextFetcher, canceling ctx aborts in-flight
// and future fetches.
func NewRuntimeContext(ctx context.Context, ds *sdf.Dataset, fetcher Fetcher) *Runtime {
	if ctx == nil {
		ctx = context.Background()
	}
	reg := obs.RegistryOf(ctx)
	return &Runtime{
		ds: ds, fetcher: fetcher, name: ds.Name(), ctx: ctx,
		mMisses:    reg.Counter("kondo_runtime_misses_total"),
		mRecovered: reg.Counter("kondo_runtime_recovered_total"),
	}
}

// Space implements workload.Accessor.
func (rt *Runtime) Space() array.Space { return rt.ds.Space() }

// Misses returns how many element reads touched carved-away data.
func (rt *Runtime) Misses() int64 { return rt.misses.Load() }

// Recovered returns how many missed reads were successfully recovered
// through the fetcher.
func (rt *Runtime) Recovered() int64 { return rt.recovered.Load() }

// ReadElement implements workload.Accessor with miss recovery.
func (rt *Runtime) ReadElement(ix array.Index) (float64, error) {
	v, err := rt.ds.ReadElement(ix)
	if err == nil {
		return v, nil
	}
	if !errors.Is(err, sdf.ErrDataMissing) {
		return 0, err
	}
	rt.misses.Add(1)
	rt.mMisses.Inc()
	if rt.fetcher == nil {
		return 0, fmt.Errorf("debloat: %w at %v of %q", ErrDataMissing, ix, rt.name)
	}
	// Only the miss path is traced: hits must stay at raw read cost.
	sp := obs.Start(rt.ctx, "debloat.recover")
	if sp != nil {
		sp.Arg("dataset", rt.name)
	}
	if cf, ok := rt.fetcher.(ContextFetcher); ok {
		v, err = cf.FetchContext(rt.ctx, rt.name, ix)
	} else {
		v, err = rt.fetcher.Fetch(rt.name, ix)
	}
	sp.End()
	if err != nil {
		return 0, err
	}
	rt.recovered.Add(1)
	rt.mRecovered.Inc()
	return v, nil
}

// ReadSlab implements workload.Accessor: the dense block read of the
// workload layer, served element-wise so that partially-present blocks
// recover only the missing elements. With a chunk-caching fetcher
// (dataserve.Fetcher) the element-wise fallback stays cheap: the first
// miss of a chunk pulls the whole chunk and its neighbors hit memory.
func (rt *Runtime) ReadSlab(start, count []int) ([]float64, error) {
	sel := sdf.Slab(start, count)
	if err := sel.Validate(rt.ds.Space()); err != nil {
		return nil, err
	}
	// Fast path: try the coalesced hyperslab read first; fall back to
	// per-element recovery only when something is missing.
	vals, err := rt.ds.ReadHyperslab(sel)
	if err == nil {
		return vals, nil
	}
	if !errors.Is(err, sdf.ErrDataMissing) {
		return nil, err
	}
	out := make([]float64, 0, sel.NumElements())
	var readErr error
	sel.Each(func(ix array.Index) bool {
		v, err := rt.ReadElement(ix.Clone())
		if err != nil {
			readErr = err
			return false
		}
		out = append(out, v)
		return true
	})
	if readErr != nil {
		return nil, readErr
	}
	return out, nil
}
