package debloat

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/array"
	"repro/internal/sdf"
)

// ErrDataMissing is re-exported so runtime users don't need to import
// the format layer to classify the exception.
var ErrDataMissing = sdf.ErrDataMissing

// Fetcher recovers element values that were carved away. It models the
// remote-server recovery path of paper §VI: "a container runtime can
// use audited information to pull missing data offsets from a remote
// server, when requested."
type Fetcher interface {
	// Fetch returns the value of one missing element.
	Fetch(dataset string, ix array.Index) (float64, error)
}

// OriginFetcher serves misses from the original (un-debloated) file —
// the repository copy the container was built from.
type OriginFetcher struct {
	mu   sync.Mutex
	path string
	file *sdf.File
}

// NewOriginFetcher returns a fetcher reading from the original file at
// path. The file is opened lazily on first miss.
func NewOriginFetcher(path string) *OriginFetcher {
	return &OriginFetcher{path: path}
}

// Fetch implements Fetcher.
func (f *OriginFetcher) Fetch(dataset string, ix array.Index) (float64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.file == nil {
		file, err := sdf.Open(f.path)
		if err != nil {
			return 0, fmt.Errorf("debloat: opening origin: %w", err)
		}
		f.file = file
	}
	ds, err := f.file.Dataset(dataset)
	if err != nil {
		return 0, err
	}
	return ds.ReadElement(ix)
}

// Close releases the origin file if it was opened.
func (f *OriginFetcher) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.file == nil {
		return nil
	}
	err := f.file.Close()
	f.file = nil
	return err
}

// Runtime serves a program's reads from a debloated file. Reads of
// carved-away data raise the data-missing exception, or are recovered
// through the fetcher when one is attached. Misses are counted either
// way, giving the §V-D1 missed-access telemetry.
type Runtime struct {
	ds      *sdf.Dataset
	fetcher Fetcher
	name    string

	mu     sync.Mutex
	misses int64
}

// NewRuntime returns a runtime over one dataset of an opened debloated
// file. fetcher may be nil, in which case misses are fatal.
func NewRuntime(ds *sdf.Dataset, fetcher Fetcher) *Runtime {
	return &Runtime{ds: ds, fetcher: fetcher, name: ds.Name()}
}

// Space implements workload.Accessor.
func (rt *Runtime) Space() array.Space { return rt.ds.Space() }

// Misses returns how many element reads touched carved-away data.
func (rt *Runtime) Misses() int64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.misses
}

func (rt *Runtime) noteMiss() {
	rt.mu.Lock()
	rt.misses++
	rt.mu.Unlock()
}

// ReadElement implements workload.Accessor with miss recovery.
func (rt *Runtime) ReadElement(ix array.Index) (float64, error) {
	v, err := rt.ds.ReadElement(ix)
	if err == nil {
		return v, nil
	}
	if !errors.Is(err, sdf.ErrDataMissing) {
		return 0, err
	}
	rt.noteMiss()
	if rt.fetcher == nil {
		return 0, fmt.Errorf("debloat: %w at %v of %q", ErrDataMissing, ix, rt.name)
	}
	return rt.fetcher.Fetch(rt.name, ix)
}

// ReadSlab implements workload.Accessor: the dense block read of the
// workload layer, served element-wise so that partially-present blocks
// recover only the missing elements.
func (rt *Runtime) ReadSlab(start, count []int) ([]float64, error) {
	sel := sdf.Slab(start, count)
	if err := sel.Validate(rt.ds.Space()); err != nil {
		return nil, err
	}
	// Fast path: try the coalesced hyperslab read first; fall back to
	// per-element recovery only when something is missing.
	vals, err := rt.ds.ReadHyperslab(sel)
	if err == nil {
		return vals, nil
	}
	if !errors.Is(err, sdf.ErrDataMissing) {
		return nil, err
	}
	out := make([]float64, 0, sel.NumElements())
	var readErr error
	sel.Each(func(ix array.Index) bool {
		v, err := rt.ReadElement(ix.Clone())
		if err != nil {
			readErr = err
			return false
		}
		out = append(out, v)
		return true
	})
	if readErr != nil {
		return nil, readErr
	}
	return out, nil
}
