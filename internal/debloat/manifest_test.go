package debloat

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/array"
	"repro/internal/carve"
	"repro/internal/geom"
	"repro/internal/hull"
)

func twoHulls(t *testing.T) []*hull.Hull {
	t.Helper()
	a, err := hull.New([]geom.Point{
		geom.NewPoint(0, 0), geom.NewPoint(10, 0), geom.NewPoint(0, 10), geom.NewPoint(10, 10),
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := hull.New([]geom.Point{
		geom.NewPoint(40, 40), geom.NewPoint(50, 40), geom.NewPoint(40, 50), geom.NewPoint(50, 50),
	})
	if err != nil {
		t.Fatal(err)
	}
	return []*hull.Hull{a, b}
}

func TestManifestSaveLoadRoundTrip(t *testing.T) {
	hulls := twoHulls(t)
	stats := Stats{OriginalBytes: 1000, DebloatedBytes: 300, KeptIndices: 220}
	m := NewManifest("CS2", "data", []int{64, 64}, "chunk", []int{8, 8}, hulls, stats, 1500)

	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Program != "CS2" || back.Dataset != "data" || back.Granularity != "chunk" {
		t.Errorf("metadata wrong: %+v", back)
	}
	if len(back.Hulls) != 2 || back.KeptIndices != 220 || back.Evaluations != 1500 {
		t.Errorf("payload wrong: %+v", back)
	}
	if back.OriginalBytes != 1000 || back.DebloatedBytes != 300 {
		t.Errorf("sizes wrong: %+v", back)
	}

	rebuilt, err := back.RebuildHulls()
	if err != nil {
		t.Fatal(err)
	}
	if len(rebuilt) != 2 {
		t.Fatalf("rebuilt %d hulls", len(rebuilt))
	}
	for i, h := range rebuilt {
		if h.NumVertices() != hulls[i].NumVertices() {
			t.Errorf("hull %d vertex count %d != %d", i, h.NumVertices(), hulls[i].NumVertices())
		}
	}
}

func TestManifestCovers(t *testing.T) {
	m := NewManifest("p", "d", []int{64, 64}, "element", nil, twoHulls(t), Stats{}, 0)
	cases := []struct {
		ix   array.Index
		want bool
	}{
		{array.NewIndex(5, 5), true},
		{array.NewIndex(45, 45), true},
		{array.NewIndex(25, 25), false}, // between the hulls
		{array.NewIndex(60, 60), false},
	}
	for _, c := range cases {
		got, err := m.Covers(c.ix)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Covers(%v) = %v, want %v", c.ix, got, c.want)
		}
	}
}

func TestManifestMatchesCarvedSubset(t *testing.T) {
	// A manifest built from carver output must cover exactly the
	// rasterized approximation.
	space := array.MustSpace(48, 48)
	obs := array.NewIndexSet(space)
	for r := 0; r < 12; r++ {
		for c := 0; c < 12; c++ {
			obs.Add(array.NewIndex(r, c))
		}
	}
	hulls, err := carve.Carve(obs, carve.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	raster, err := carve.Rasterize(hulls, space)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManifest("p", "d", space.Dims(), "chunk", []int{8, 8}, hulls, Stats{}, 0)
	space.Each(func(ix array.Index) bool {
		covered, err := m.Covers(ix)
		if err != nil {
			t.Fatal(err)
		}
		if covered != raster.Contains(ix) {
			t.Fatalf("Covers(%v) = %v, raster = %v", ix, covered, raster.Contains(ix))
		}
		return true
	})
}

func TestLoadManifestErrors(t *testing.T) {
	if _, err := LoadManifest(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing manifest should error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := writeFileHelper(bad, "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(bad); err == nil {
		t.Error("malformed manifest should error")
	}
}

func writeFileHelper(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
