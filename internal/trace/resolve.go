package trace

import (
	"fmt"

	"repro/internal/array"
	"repro/internal/ioevent"
	"repro/internal/sdf"
)

// ResolveIndices converts audited byte ranges of a data file into the
// set of array indices they cover, using the dataset's self-describing
// metadata. This is the offset→index half of the bijection Kondo
// maintains between index tuples and byte offsets (paper §IV-C).
//
// Ranges may include non-data bytes (the header and metadata reads
// issued when opening the file); those bytes are ignored. Partial
// element coverage counts the element as accessed: a system call that
// read any byte of an element observed that element.
func ResolveIndices(ds *sdf.Dataset, ranges []ioevent.Interval) (*array.IndexSet, error) {
	set := array.NewIndexSet(ds.Space())
	elem := int64(ds.DType().Size())
	regions := ds.DataRegions()
	for _, r := range ranges {
		for _, reg := range regions {
			lo := maxInt64(r.Start, reg.Off)
			hi := minInt64(r.End, reg.Off+reg.Len)
			if lo >= hi {
				continue
			}
			// Align down to the element grid of this region.
			rel := lo - reg.Off
			lo = reg.Off + (rel/elem)*elem
			for off := lo; off < hi; off += elem {
				ix, err := ds.ResolveOffset(off)
				if err != nil {
					// Edge-chunk padding bytes are physically stored
					// but carry no logical element; skip them.
					continue
				}
				if _, err := set.Add(ix); err != nil {
					return nil, fmt.Errorf("trace: resolve offset %d: %w", off, err)
				}
			}
		}
	}
	return set, nil
}

// AccessedIndices resolves the complete audited access set of the
// named file (merged across processes) against the dataset stored in
// it.
func AccessedIndices(store *ioevent.Store, fileName string, ds *sdf.Dataset) (*array.IndexSet, error) {
	return ResolveIndices(ds, store.FileRanges(fileName))
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
