// Package trace is Kondo's audit interposition layer, standing in for
// the ptrace-based Sciunit system of the paper. It wraps file handles
// so that every data access turns into an ioevent.Event, and resolves
// the audited byte ranges back to array indices using the data file's
// self-describing metadata (paper §IV-C).
//
// The paper's interposer observes open/lseek/read/close system calls;
// our traced handle exposes ReadAt, which it reports as the equivalent
// lseek+read pair so the recorded event stream matches what a syscall
// tracer would log.
package trace

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/ioevent"
	"repro/internal/obs"
)

// Tracer audits file I/O into an event store. Each Tracer models one
// audited execution; the paper's debloat test creates one per run.
type Tracer struct {
	store   *ioevent.Store
	nextPID int64

	logMu sync.Mutex
	log   *ioevent.LogWriter
}

// NewTracer returns a Tracer recording into store.
func NewTracer(store *ioevent.Store) *Tracer {
	return &Tracer{store: store}
}

// Store returns the event store the tracer records into.
func (t *Tracer) Store() *ioevent.Store { return t.store }

// TeeLog additionally appends every recorded event to the given
// persistent event log (paper §V Implementation: system-call arguments
// are recorded in a data store). Pass nil to stop teeing.
func (t *Tracer) TeeLog(lw *ioevent.LogWriter) {
	t.logMu.Lock()
	t.log = lw
	t.logMu.Unlock()
}

// record sends an event to the store and, when attached, the log.
func (t *Tracer) record(e ioevent.Event) error {
	if err := t.store.Record(e); err != nil {
		return err
	}
	t.logMu.Lock()
	lw := t.log
	t.logMu.Unlock()
	if lw != nil {
		if err := lw.Append(e); err != nil {
			return err
		}
	}
	return nil
}

// NewProcess allocates a simulated process identifier. Audited
// workloads that model multi-process executions call this once per
// process.
func (t *Tracer) NewProcess() int {
	return int(atomic.AddInt64(&t.nextPID, 1))
}

// Open opens path for reading through the tracer under the given
// simulated pid, recording the open event.
func (t *Tracer) Open(pid int, path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: open %s: %w", path, err)
	}
	id := ioevent.ID{PID: pid, File: filepath.Base(path)}
	if err := t.record(ioevent.Event{ID: id, Op: ioevent.OpOpen}); err != nil {
		f.Close()
		return nil, err
	}
	obs.Log().Debug("trace: opened audited file", "pid", pid, "file", id.File)
	return &File{f: f, tracer: t, id: id}, nil
}

// File is a traced read-only file handle. It satisfies
// sdf.ByteSource, so an sdf.File opened through it is fully audited.
type File struct {
	f      *os.File
	tracer *Tracer
	id     ioevent.ID

	mu     sync.Mutex
	closed bool
}

// ReadAt reads len(p) bytes at offset off, recording the access as an
// lseek followed by a read of the number of bytes actually
// transferred.
func (tf *File) ReadAt(p []byte, off int64) (int, error) {
	tf.mu.Lock()
	if tf.closed {
		tf.mu.Unlock()
		return 0, fmt.Errorf("trace: read on closed file %s", tf.id.File)
	}
	tf.mu.Unlock()

	if err := tf.tracer.record(ioevent.Event{ID: tf.id, Op: ioevent.OpLseek, Offset: off}); err != nil {
		return 0, err
	}
	n, err := tf.f.ReadAt(p, off)
	if n > 0 {
		if rerr := tf.tracer.record(ioevent.Event{
			ID: tf.id, Op: ioevent.OpRead, Offset: off, Size: int64(n),
		}); rerr != nil {
			return n, rerr
		}
	}
	return n, err
}

// Close closes the handle and records the close event.
func (tf *File) Close() error {
	tf.mu.Lock()
	if tf.closed {
		tf.mu.Unlock()
		return nil
	}
	tf.closed = true
	tf.mu.Unlock()
	if err := tf.tracer.record(ioevent.Event{ID: tf.id, Op: ioevent.OpClose}); err != nil {
		return err
	}
	obs.Log().Debug("trace: closed audited file", "pid", tf.id.PID, "file", tf.id.File)
	return tf.f.Close()
}

// Name returns the audited file name (the event ID's file component).
func (tf *File) Name() string { return tf.id.File }
