package trace

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/array"
	"repro/internal/ioevent"
	"repro/internal/sdf"
)

func writeFile(t *testing.T, space array.Space, chunk []int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.sdf")
	w := sdf.NewWriter(path)
	dw, err := w.CreateDataset("d", space, array.Float64, chunk)
	if err != nil {
		t.Fatal(err)
	}
	err = dw.Fill(func(ix array.Index) float64 {
		lin, _ := space.Linear(ix)
		return float64(lin)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTracedOpenReadClose(t *testing.T) {
	space := array.MustSpace(4, 4)
	path := writeFile(t, space, nil)

	store := ioevent.NewStore()
	tr := NewTracer(store)
	pid := tr.NewProcess()
	tf, err := tr.Open(pid, path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := sdf.OpenFrom(tf)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := f.Dataset("d")
	if err != nil {
		t.Fatal(err)
	}
	v, err := ds.ReadElement(array.NewIndex(2, 3))
	if err != nil || v != 11 {
		t.Fatalf("ReadElement = %v, %v", v, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Events: open + (lseek+read)×(header, metadata, element) + close.
	if store.Events() < 5 {
		t.Errorf("Events = %d, want >= 5", store.Events())
	}
	name := filepath.Base(path)
	ranges := store.FileRanges(name)
	if len(ranges) == 0 {
		t.Fatal("no audited ranges")
	}
	// The element's bytes must be covered.
	abs, err := ds.FileOffset(array.NewIndex(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	covered := false
	for _, r := range ranges {
		if r.Start <= abs && abs+8 <= r.End {
			covered = true
		}
	}
	if !covered {
		t.Errorf("element bytes [%d,%d) not covered by %v", abs, abs+8, ranges)
	}
}

func TestReadOnClosedFile(t *testing.T) {
	space := array.MustSpace(2, 2)
	path := writeFile(t, space, nil)
	store := ioevent.NewStore()
	tr := NewTracer(store)
	tf, err := tr.Open(tr.NewProcess(), path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tf.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tf.Close(); err != nil {
		t.Errorf("second Close should be a no-op, got %v", err)
	}
	buf := make([]byte, 4)
	if _, err := tf.ReadAt(buf, 0); err == nil {
		t.Error("ReadAt after Close should error")
	}
}

func TestTeeLogCapturesEventStream(t *testing.T) {
	space := array.MustSpace(4, 4)
	path := writeFile(t, space, nil)
	store := ioevent.NewStore()
	tr := NewTracer(store)

	var buf bytes.Buffer
	lw := ioevent.NewLogWriter(&buf)
	tr.TeeLog(lw)

	tf, err := tr.Open(tr.NewProcess(), path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := sdf.OpenFrom(tf)
	if err != nil {
		t.Fatal(err)
	}
	ds, _ := f.Dataset("d")
	if _, err := ds.ReadElement(array.NewIndex(1, 1)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}

	// Replaying the log must reproduce the live store exactly.
	replayed := ioevent.NewStore()
	if err := ioevent.Replay(bytes.NewReader(buf.Bytes()), replayed); err != nil {
		t.Fatal(err)
	}
	if replayed.Events() != store.Events() {
		t.Errorf("replayed %d events, live store has %d", replayed.Events(), store.Events())
	}
	name := filepath.Base(path)
	a, b := store.FileRanges(name), replayed.FileRanges(name)
	if len(a) != len(b) {
		t.Fatalf("range counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("range %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestNewProcessUnique(t *testing.T) {
	tr := NewTracer(ioevent.NewStore())
	seen := map[int]bool{}
	for i := 0; i < 10; i++ {
		pid := tr.NewProcess()
		if seen[pid] {
			t.Fatalf("pid %d repeated", pid)
		}
		seen[pid] = true
	}
}

func TestResolveIndicesContiguous(t *testing.T) {
	space := array.MustSpace(4, 4)
	path := writeFile(t, space, nil)
	f, err := sdf.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, _ := f.Dataset("d")

	// Audit exactly elements (1,0)..(1,3): one row = 32 bytes.
	rowStart, err := ds.FileOffset(array.NewIndex(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	set, err := ResolveIndices(ds, []ioevent.Interval{{Start: rowStart, End: rowStart + 32}})
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 4 {
		t.Fatalf("resolved %d indices, want 4", set.Len())
	}
	for c := 0; c < 4; c++ {
		if !set.Contains(array.NewIndex(1, c)) {
			t.Errorf("missing index (1,%d)", c)
		}
	}
}

func TestResolveIndicesPartialElement(t *testing.T) {
	space := array.MustSpace(4, 4)
	path := writeFile(t, space, nil)
	f, err := sdf.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, _ := f.Dataset("d")
	abs, _ := ds.FileOffset(array.NewIndex(0, 2))
	// Touch only 1 byte in the middle of the element.
	set, err := ResolveIndices(ds, []ioevent.Interval{{Start: abs + 3, End: abs + 4}})
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 1 || !set.Contains(array.NewIndex(0, 2)) {
		t.Errorf("partial element not resolved: len=%d", set.Len())
	}
}

func TestResolveIndicesIgnoresHeader(t *testing.T) {
	space := array.MustSpace(4, 4)
	path := writeFile(t, space, nil)
	f, err := sdf.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, _ := f.Dataset("d")
	// A range entirely inside the header/metadata area.
	set, err := ResolveIndices(ds, []ioevent.Interval{{Start: 0, End: 16}})
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 0 {
		t.Errorf("header bytes resolved to %d indices", set.Len())
	}
}

func TestResolveIndicesChunked(t *testing.T) {
	space := array.MustSpace(6, 6)
	path := writeFile(t, space, []int{3, 3})
	f, err := sdf.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, _ := f.Dataset("d")

	// Full end-to-end: audited read of a hyperslab crossing chunks.
	store := ioevent.NewStore()
	tr := NewTracer(store)
	tf, err := tr.Open(tr.NewProcess(), path)
	if err != nil {
		t.Fatal(err)
	}
	af, err := sdf.OpenFrom(tf)
	if err != nil {
		t.Fatal(err)
	}
	ads, _ := af.Dataset("d")
	if _, err := ads.ReadHyperslab(sdf.Slab([]int{2, 2}, []int{2, 2})); err != nil {
		t.Fatal(err)
	}
	af.Close()

	set, err := AccessedIndices(store, filepath.Base(path), ds)
	if err != nil {
		t.Fatal(err)
	}
	want := []array.Index{
		array.NewIndex(2, 2), array.NewIndex(2, 3),
		array.NewIndex(3, 2), array.NewIndex(3, 3),
	}
	for _, ix := range want {
		if !set.Contains(ix) {
			t.Errorf("missing %v", ix)
		}
	}
	if set.Len() != len(want) {
		t.Errorf("resolved %d indices, want %d: over-approximation", set.Len(), len(want))
	}
}
