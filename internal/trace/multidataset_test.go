package trace

import (
	"path/filepath"
	"testing"

	"repro/internal/array"
	"repro/internal/ioevent"
	"repro/internal/sdf"
)

// TestResolveSeparatesDatasets audits a file holding two datasets and
// checks that offset→index resolution attributes each access to the
// right dataset — the self-describing-metadata property the paper's
// §IV-C mapping depends on (multiple data arrays per file, footnote 1).
func TestResolveSeparatesDatasets(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "multi.sdf")
	spaceA := array.MustSpace(8, 8)
	spaceB := array.MustSpace(6, 6, 6)

	w := sdf.NewWriter(path)
	da, err := w.CreateDataset("alpha", spaceA, array.Float64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := da.Fill(func(array.Index) float64 { return 1 }); err != nil {
		t.Fatal(err)
	}
	db, err := w.CreateDataset("beta", spaceB, array.Float32, []int{3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Fill(func(array.Index) float64 { return 2 }); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	store := ioevent.NewStore()
	tr := NewTracer(store)
	tf, err := tr.Open(tr.NewProcess(), path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := sdf.OpenFrom(tf)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	dsA, err := f.Dataset("alpha")
	if err != nil {
		t.Fatal(err)
	}
	dsB, err := f.Dataset("beta")
	if err != nil {
		t.Fatal(err)
	}
	// Read 3 elements of alpha and 2 of beta.
	for _, ix := range []array.Index{
		array.NewIndex(0, 0), array.NewIndex(3, 3), array.NewIndex(7, 7),
	} {
		if _, err := dsA.ReadElement(ix); err != nil {
			t.Fatal(err)
		}
	}
	for _, ix := range []array.Index{
		array.NewIndex(1, 1, 1), array.NewIndex(5, 5, 5),
	} {
		if _, err := dsB.ReadElement(ix); err != nil {
			t.Fatal(err)
		}
	}

	name := filepath.Base(path)
	setA, err := AccessedIndices(store, name, dsA)
	if err != nil {
		t.Fatal(err)
	}
	setB, err := AccessedIndices(store, name, dsB)
	if err != nil {
		t.Fatal(err)
	}
	if setA.Len() != 3 {
		t.Errorf("alpha resolved %d indices, want 3", setA.Len())
	}
	if setB.Len() != 2 {
		t.Errorf("beta resolved %d indices, want 2", setB.Len())
	}
	if !setA.Contains(array.NewIndex(3, 3)) {
		t.Error("alpha missing (3,3)")
	}
	if !setB.Contains(array.NewIndex(5, 5, 5)) {
		t.Error("beta missing (5,5,5)")
	}
}
