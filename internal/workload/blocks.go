package workload

import (
	"fmt"

	"repro/internal/array"
)

// blockEdgeBase spaces the instrumentation edge ids of the block
// programs away from other families.
const blockEdgeBase = 200

// PRL is the peripheral-read benchmark: the "rectangular shape with a
// hole" stencil of paper Table I. Each run reads the thickness-2
// border (2D) or shell (3D) of a parameterized box anchored at the
// origin. Because every box extent has a large minimum, the union over
// Θ leaves an unread hole behind the border bands — which a convex
// hull must cover, costing precision; the 3D minimum is chosen so the
// hole's volume share grows from 2D to 3D, matching §V-D2's "the hole
// enlarges in PRL3D".
type PRL struct {
	space array.Space
	dims  []int
	min   []int // minimum box extent per dimension
}

// NewPRL returns the PRL program over the given array extents (rank 2
// or 3).
func NewPRL(dims ...int) (*PRL, error) {
	if len(dims) != 2 && len(dims) != 3 {
		return nil, fmt.Errorf("workload: PRL wants rank 2 or 3, got %d", len(dims))
	}
	min := make([]int, len(dims))
	for k, d := range dims {
		if d < 16 {
			return nil, fmt.Errorf("workload: PRL extent %d too small", d)
		}
		if len(dims) == 2 {
			min[k] = d / 2
		} else {
			min[k] = 3 * d / 4
		}
	}
	return &PRL{space: array.MustSpace(dims...), dims: append([]int(nil), dims...), min: min}, nil
}

// MustPRL is NewPRL that panics on error.
func MustPRL(dims ...int) *PRL {
	p, err := NewPRL(dims...)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements Program.
func (p *PRL) Name() string {
	if len(p.dims) == 2 {
		return "PRL2D"
	}
	return "PRL3D"
}

// Description implements Program.
func (p *PRL) Description() string {
	return "peripheral read: thickness-2 border of an origin-anchored box (ring/shell with interior hole)"
}

// Space implements Program.
func (p *PRL) Space() array.Space { return p.space }

// Params implements Program: one box extent per dimension, each at
// least half and at most the full array extent.
func (p *PRL) Params() ParamSpace {
	ps := make(ParamSpace, len(p.dims))
	names := []string{"extent0", "extent1", "extent2"}
	for k := range p.dims {
		ps[k] = ParamRange{Name: names[k], Lo: p.min[k], Hi: p.dims[k]}
	}
	return ps
}

// Run implements Program.
func (p *PRL) Run(v []float64, env *Env) error {
	if len(v) != len(p.dims) {
		return fmt.Errorf("workload: %s wants %d parameters, got %d", p.Name(), len(p.dims), len(v))
	}
	ext := make([]int, len(v))
	for k := range v {
		ext[k] = RoundParam(v[k])
		if ext[k] < p.min[k] || ext[k] > p.dims[k] {
			env.Hit(blockEdgeBase + 0)
			return nil // outside Θ
		}
	}
	env.Hit(blockEdgeBase + 1)
	// For each dimension, read the two thickness-2 faces of the box
	// [0,ext) perpendicular to that dimension.
	rank := len(ext)
	for k := 0; k < rank; k++ {
		env.Hit(blockEdgeBase + 2 + uint32(k))
		for _, lo := range []int{0, ext[k] - 2} {
			start := make([]int, rank)
			count := make([]int, rank)
			for j := 0; j < rank; j++ {
				start[j] = 0
				count[j] = ext[j]
			}
			start[k] = lo
			count[k] = 2
			if _, err := env.Acc.ReadSlab(start, count); err != nil {
				return err
			}
		}
	}
	return nil
}

// InTruth implements AnalyticTruth: an index is ever read iff it lies
// within 2 of the array origin along some dimension, or at/after
// min-2 along some dimension (the sweep of that dimension's far
// face). The residual hole is the box [2, min_k-2)^d.
func (p *PRL) InTruth(ix array.Index) bool {
	for k, x := range ix {
		if x < 2 || x >= p.min[k]-2 {
			return true
		}
	}
	return false
}

// cornerKind discriminates the two corner-block benchmarks.
type cornerKind uint8

const (
	ldcKind cornerKind = iota // corners on the main (left) diagonal
	rdcKind                   // corners on the anti (right) diagonal
)

// CornerBlocks is the LDC/RDC benchmark family: each run reads two
// parameterized solid blocks at opposite corners of the array — the
// main diagonal's corners for LDC, the anti-diagonal's for RDC. Block
// extents are capped at a quarter of the array extent, so the two
// accessed regions stay clearly separated; Kondo's carver keeps them
// as distinct hulls and achieves precision 1 (paper §V-D2).
type CornerBlocks struct {
	kind  cornerKind
	space array.Space
	dims  []int
	max   []int // maximum block extent per dimension (= extent/4)
}

func newCornerBlocks(kind cornerKind, dims []int) (*CornerBlocks, error) {
	if len(dims) != 2 && len(dims) != 3 {
		return nil, fmt.Errorf("workload: corner blocks want rank 2 or 3, got %d", len(dims))
	}
	max := make([]int, len(dims))
	for k, d := range dims {
		if d < 16 {
			return nil, fmt.Errorf("workload: corner-block extent %d too small", d)
		}
		max[k] = d / 4
	}
	return &CornerBlocks{kind: kind, space: array.MustSpace(dims...), dims: append([]int(nil), dims...), max: max}, nil
}

// NewLDC returns the left-diagonal-corners program (rank 2 or 3).
func NewLDC(dims ...int) (*CornerBlocks, error) { return newCornerBlocks(ldcKind, dims) }

// NewRDC returns the right-diagonal-corners program (rank 2 or 3).
func NewRDC(dims ...int) (*CornerBlocks, error) { return newCornerBlocks(rdcKind, dims) }

// MustLDC is NewLDC that panics on error.
func MustLDC(dims ...int) *CornerBlocks {
	p, err := NewLDC(dims...)
	if err != nil {
		panic(err)
	}
	return p
}

// MustRDC is NewRDC that panics on error.
func MustRDC(dims ...int) *CornerBlocks {
	p, err := NewRDC(dims...)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements Program.
func (p *CornerBlocks) Name() string {
	base := "LDC"
	if p.kind == rdcKind {
		base = "RDC"
	}
	if len(p.dims) == 2 {
		return base + "2D"
	}
	return base + "3D"
}

// Description implements Program.
func (p *CornerBlocks) Description() string {
	if p.kind == ldcKind {
		return "two solid blocks at the main-diagonal corners (disjoint subsets)"
	}
	return "two solid blocks at the anti-diagonal corners (disjoint subsets)"
}

// Space implements Program.
func (p *CornerBlocks) Space() array.Space { return p.space }

// Params implements Program: one block extent per dimension.
func (p *CornerBlocks) Params() ParamSpace {
	ps := make(ParamSpace, len(p.dims))
	names := []string{"block0", "block1", "block2"}
	for k := range p.dims {
		ps[k] = ParamRange{Name: names[k], Lo: 2, Hi: p.max[k]}
	}
	return ps
}

// corners returns the two block anchor rules: for each dimension,
// whether the block hugs the high end of that dimension, per corner.
func (p *CornerBlocks) corners() [2][]bool {
	rank := len(p.dims)
	first := make([]bool, rank)  // all-low corner (LDC) or mixed (RDC)
	second := make([]bool, rank) // opposite corner
	for k := 0; k < rank; k++ {
		second[k] = true
	}
	if p.kind == rdcKind {
		// Flip one axis: corners move to the anti-diagonal.
		first[rank-1] = true
		second[rank-1] = false
	}
	return [2][]bool{first, second}
}

// Run implements Program.
func (p *CornerBlocks) Run(v []float64, env *Env) error {
	if len(v) != len(p.dims) {
		return fmt.Errorf("workload: %s wants %d parameters, got %d", p.Name(), len(p.dims), len(v))
	}
	ext := make([]int, len(v))
	for k := range v {
		ext[k] = RoundParam(v[k])
		if ext[k] < 2 || ext[k] > p.max[k] {
			env.Hit(blockEdgeBase + 10)
			return nil // outside Θ
		}
	}
	env.Hit(blockEdgeBase + 11)
	for ci, high := range p.corners() {
		env.Hit(blockEdgeBase + 12 + uint32(ci))
		start := make([]int, len(ext))
		for k := range ext {
			if high[k] {
				start[k] = p.dims[k] - ext[k]
			}
		}
		if _, err := env.Acc.ReadSlab(start, ext); err != nil {
			return err
		}
	}
	return nil
}

// InTruth implements AnalyticTruth: the union over Θ of each corner
// block is the full quarter-extent box at that corner.
func (p *CornerBlocks) InTruth(ix array.Index) bool {
	for _, high := range p.corners() {
		in := true
		for k, x := range ix {
			if high[k] {
				if x < p.dims[k]-p.max[k] {
					in = false
					break
				}
			} else if x >= p.max[k] {
				in = false
				break
			}
		}
		if in {
			return true
		}
	}
	return false
}
