package workload

import (
	"fmt"

	"repro/internal/array"
)

// restricted narrows a program's parameter space to the ranges a
// container creator advertises (the PARAM line of paper Fig. 2a). The
// paper's premise is that Θ — not the program text — defines the
// supported runs: the same program with a narrower Θ has a smaller
// index subset, e.g. Listing 1 subsets the lower triangle "if the
// container creator had advertised the container as only to be run
// with valuations wherein stepX ≤ stepY" (§I-A).
type restricted struct {
	inner  Program
	params ParamSpace
}

// WithParams returns p restricted to the advertised parameter space.
// Every advertised range must lie within the program's own range for
// the same parameter; runs outside the advertised space access
// nothing.
//
// The restricted program never claims an analytic ground truth (the
// inner program's closed form describes the full Θ); GroundTruth falls
// back to exhaustive enumeration over the narrowed space.
func WithParams(p Program, ps ParamSpace) (Program, error) {
	own := p.Params()
	if len(ps) != len(own) {
		return nil, fmt.Errorf("workload: %s wants %d parameters, PARAM declares %d",
			p.Name(), len(own), len(ps))
	}
	out := make(ParamSpace, len(ps))
	for i, r := range ps {
		if r.Lo < own[i].Lo || r.Hi > own[i].Hi {
			return nil, fmt.Errorf("workload: PARAM range %d [%d,%d] exceeds %s's supported [%d,%d]",
				i, r.Lo, r.Hi, p.Name(), own[i].Lo, own[i].Hi)
		}
		out[i] = r
		if out[i].Name == "" || out[i].Name[0] == 'p' {
			// Prefer the program's descriptive parameter names over
			// the spec parser's positional placeholders.
			out[i].Name = own[i].Name
		}
	}
	return &restricted{inner: p, params: out}, nil
}

// Name implements Program.
func (r *restricted) Name() string { return r.inner.Name() }

// Description implements Program.
func (r *restricted) Description() string {
	return r.inner.Description() + " (restricted Θ)"
}

// Space implements Program.
func (r *restricted) Space() array.Space { return r.inner.Space() }

// Params implements Program: the advertised (narrowed) space.
func (r *restricted) Params() ParamSpace { return r.params }

// Run implements Program: valuations outside the advertised Θ access
// nothing, exactly like unsupported valuations of the inner program.
func (r *restricted) Run(v []float64, env *Env) error {
	if !r.params.Contains(v) {
		return nil
	}
	return r.inner.Run(v, env)
}
