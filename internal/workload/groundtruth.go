package workload

import (
	"fmt"

	"repro/internal/array"
)

// hasAnalytic is satisfied by program types where only some instances
// carry a closed-form truth (the CS family: CS3 has none).
type hasAnalytic interface {
	HasAnalyticTruth() bool
}

// analyticOf returns the program's analytic ground-truth predicate, if
// it has one.
func analyticOf(p Program) (AnalyticTruth, bool) {
	at, ok := p.(AnalyticTruth)
	if !ok {
		return nil, false
	}
	if ha, ok := p.(hasAnalytic); ok && !ha.HasAnalyticTruth() {
		return nil, false
	}
	return at, true
}

// GroundTruth computes the exact index subset I_Θ of a program: the
// union of I_v over every integer parameter valuation v ∈ Θ (paper
// §III). Programs with a closed-form predicate are rasterized
// directly; the rest are enumerated exhaustively — exact by
// definition, affordable because it runs against the virtual accessor
// (no real I/O), and done once per experiment. This is the manual
// ground-truth determination of §V-C.
func GroundTruth(p Program) (*array.IndexSet, error) {
	if at, ok := analyticOf(p); ok {
		set := array.NewIndexSet(p.Space())
		var addErr error
		p.Space().Each(func(ix array.Index) bool {
			if at.InTruth(ix) {
				if _, err := set.Add(ix); err != nil {
					addErr = err
					return false
				}
			}
			return true
		})
		return set, addErr
	}
	return ExhaustiveTruth(p)
}

// ExhaustiveTruth computes I_Θ by running the program on every
// integer valuation of Θ, accumulating all accessed indices.
func ExhaustiveTruth(p Program) (*array.IndexSet, error) {
	acc := NewVirtualAccessor(p.Space())
	env := &Env{Acc: acc}
	var runErr error
	p.Params().EachValuation(func(v []float64) bool {
		if err := p.Run(v, env); err != nil {
			runErr = fmt.Errorf("workload: exhaustive truth of %s at %v: %w", p.Name(), v, err)
			return false
		}
		return true
	})
	if runErr != nil {
		return nil, runErr
	}
	return acc.Accessed(), nil
}

// Default benchmark sizes from §V-B: 128×128 (256 KB at 16-byte
// elements) in 2D and 64×64×64 (4 MB) in 3D.
const (
	Default2D = 128
	Default3D = 64
)

// Micro returns the four micro-benchmark programs of §V-A (the
// h5bench-derived patterns) at the given 2D extent: the base cross
// stencil and the three block patterns.
func Micro(n int) []Program {
	return []Program{MustCS(2, n), MustPRL(n, n), MustLDC(n, n), MustRDC(n, n)}
}

// Synthetic returns the seven synthetic programs of Table II: the four
// modified-constraint CS variants at extent n2, and the 3D extensions
// of PRL, LDC and RDC at extent n3.
func Synthetic(n2, n3 int) []Program {
	return []Program{
		MustCS(1, n2), MustCS(3, n2), MustCS(4, n2), MustCS(5, n2),
		MustPRL(n3, n3, n3), MustLDC(n3, n3, n3), MustRDC(n3, n3, n3),
	}
}

// All returns the full 11-program benchmark suite at default sizes.
func All() []Program {
	return append(Micro(Default2D), Synthetic(Default2D, Default3D)...)
}

// ByName returns the program with the given name from the default
// suite (including ARD and MSI), or an error.
func ByName(name string) (Program, error) {
	for _, p := range All() {
		if p.Name() == name {
			return p, nil
		}
	}
	switch name {
	case "ARD":
		return DefaultARD(), nil
	case "MSI":
		return DefaultMSI(), nil
	}
	return nil, fmt.Errorf("workload: unknown program %q", name)
}

// ForSpace instantiates the named program sized to the given array
// extents, e.g. to run a container whose bundled data file has a
// different shape than the benchmark defaults.
func ForSpace(name string, dims []int) (Program, error) {
	squareExtent := func() (int, error) {
		if len(dims) != 2 || dims[0] != dims[1] {
			return 0, fmt.Errorf("workload: %s wants a square 2D array, got %v", name, dims)
		}
		return dims[0], nil
	}
	wantRank := func(rank int) error {
		if len(dims) != rank {
			return fmt.Errorf("workload: %s wants rank %d, got %v", name, rank, dims)
		}
		return nil
	}
	switch name {
	case "CS1", "CS2", "CS3", "CS4", "CS5":
		n, err := squareExtent()
		if err != nil {
			return nil, err
		}
		return NewCS(int(name[2]-'0'), n)
	case "PRL2D", "LDC2D", "RDC2D":
		if err := wantRank(2); err != nil {
			return nil, err
		}
	case "PRL3D", "LDC3D", "RDC3D":
		if err := wantRank(3); err != nil {
			return nil, err
		}
	}
	switch name {
	case "PRL2D", "PRL3D":
		return NewPRL(dims...)
	case "LDC2D", "LDC3D":
		return NewLDC(dims...)
	case "RDC2D", "RDC3D":
		return NewRDC(dims...)
	case "ARD":
		p := DefaultARD()
		if p.Space().String() != array.MustSpace(dims...).String() {
			return nil, fmt.Errorf("workload: ARD is fixed at %v", p.Space())
		}
		return p, nil
	case "MSI":
		p := DefaultMSI()
		if p.Space().String() != array.MustSpace(dims...).String() {
			return nil, fmt.Errorf("workload: MSI is fixed at %v", p.Space())
		}
		return p, nil
	}
	return nil, fmt.Errorf("workload: unknown program %q", name)
}
