package workload

import (
	"math/rand"
	"testing"

	"repro/internal/array"
)

func TestParamRange(t *testing.T) {
	r := ParamRange{Name: "x", Lo: 3, Hi: 7}
	if r.Width() != 5 {
		t.Errorf("Width = %d, want 5", r.Width())
	}
	if !r.Contains(3) || !r.Contains(7) || !r.Contains(6.6) {
		t.Error("Contains misses in-range values")
	}
	if r.Contains(2.4) || r.Contains(7.6) {
		t.Error("Contains accepts out-of-range values")
	}
}

func TestParamSpaceValuationsAndSample(t *testing.T) {
	ps := ParamSpace{{Name: "a", Lo: 0, Hi: 9}, {Name: "b", Lo: 5, Hi: 6}}
	if ps.Valuations() != 20 {
		t.Errorf("Valuations = %d, want 20", ps.Valuations())
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		v := ps.Sample(rng)
		if !ps.Contains(v) {
			t.Fatalf("Sample produced out-of-space value %v", v)
		}
	}
	if ps.Contains([]float64{1}) {
		t.Error("wrong-arity value contained")
	}
}

func TestParamSpaceClamp(t *testing.T) {
	ps := ParamSpace{{Lo: 0, Hi: 10}, {Lo: -5, Hi: 5}}
	got := ps.Clamp([]float64{-3, 99})
	if got[0] != 0 || got[1] != 5 {
		t.Errorf("Clamp = %v", got)
	}
}

func TestEachValuationLexicographic(t *testing.T) {
	ps := ParamSpace{{Lo: 0, Hi: 1}, {Lo: 10, Hi: 12}}
	var got [][2]int
	ps.EachValuation(func(v []float64) bool {
		got = append(got, [2]int{int(v[0]), int(v[1])})
		return true
	})
	want := [][2]int{{0, 10}, {0, 11}, {0, 12}, {1, 10}, {1, 11}, {1, 12}}
	if len(got) != len(want) {
		t.Fatalf("visited %d valuations, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("EachValuation order = %v, want %v", got, want)
		}
	}
	// Early stop.
	n := 0
	ps.EachValuation(func([]float64) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestVirtualAccessorRecords(t *testing.T) {
	acc := NewVirtualAccessor(array.MustSpace(8, 8))
	if _, err := acc.ReadElement(array.NewIndex(2, 3)); err != nil {
		t.Fatal(err)
	}
	vals, err := acc.ReadSlab([]int{0, 0}, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 4 {
		t.Fatalf("slab returned %d values", len(vals))
	}
	set := acc.Accessed()
	if set.Len() != 5 {
		t.Errorf("accessed %d indices, want 5", set.Len())
	}
	if !set.Contains(array.NewIndex(2, 3)) || !set.Contains(array.NewIndex(1, 1)) {
		t.Error("recorded set missing expected indices")
	}
	// Out-of-bounds element read errors and records nothing.
	if _, err := acc.ReadElement(array.NewIndex(8, 0)); err == nil {
		t.Error("out-of-bounds ReadElement should error")
	}
	if _, err := acc.ReadSlab([]int{7, 7}, []int{2, 2}); err == nil {
		t.Error("out-of-bounds ReadSlab should error")
	}
	old := acc.ResetAccessed()
	if old.Len() != 5 || acc.Accessed().Len() != 0 {
		t.Error("ResetAccessed did not swap sets")
	}
}

func TestRunOnVirtualUsefulVsNotUseful(t *testing.T) {
	cs := MustCS(2, 32)
	// stepX <= stepY: useful.
	set, err := RunOnVirtual(cs, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if set.Empty() {
		t.Error("valid parameter value accessed nothing")
	}
	// stepX > stepY: the Listing-1 guard fails; not useful.
	set, err = RunOnVirtual(cs, []float64{5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !set.Empty() {
		t.Error("invalid parameter value accessed data")
	}
	// Outside Θ entirely.
	set, err = RunOnVirtual(cs, []float64{-10, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !set.Empty() {
		t.Error("out-of-Θ value accessed data")
	}
}

func TestCSZeroStepTerminates(t *testing.T) {
	cs := MustCS(2, 32)
	set, err := RunOnVirtual(cs, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	// One stencil read: exactly 4 cells.
	if set.Len() != 4 {
		t.Errorf("zero-step run accessed %d cells, want 4", set.Len())
	}
}

func TestCSRunMatchesFigure1(t *testing.T) {
	// The paper's Fig. 1 run stepX=1, stepY=1 on a 10x10 array visits
	// the diagonal 2x2 blocks.
	cs := MustCS(2, 16)
	set, err := RunOnVirtual(cs, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= 14; i++ {
		if !set.Contains(array.NewIndex(i, i)) {
			t.Errorf("diagonal cell (%d,%d) not accessed", i, i)
		}
	}
	if set.Contains(array.NewIndex(0, 5)) {
		t.Error("off-diagonal cell unexpectedly accessed")
	}
}

func TestProgramNamesAndMetadata(t *testing.T) {
	progs := All()
	if len(progs) != 11 {
		t.Fatalf("All() returned %d programs, want 11", len(progs))
	}
	wantNames := map[string]bool{
		"CS1": true, "CS2": true, "CS3": true, "CS4": true, "CS5": true,
		"PRL2D": true, "PRL3D": true, "LDC2D": true, "LDC3D": true,
		"RDC2D": true, "RDC3D": true,
	}
	for _, p := range progs {
		if !wantNames[p.Name()] {
			t.Errorf("unexpected program %q", p.Name())
		}
		delete(wantNames, p.Name())
		if p.Description() == "" {
			t.Errorf("%s has no description", p.Name())
		}
		if len(p.Params()) < 2 {
			t.Errorf("%s has %d params", p.Name(), len(p.Params()))
		}
	}
	if len(wantNames) != 0 {
		t.Errorf("missing programs: %v", wantNames)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"CS3", "PRL3D", "ARD", "MSI"} {
		p, err := ByName(name)
		if err != nil || p.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name should error")
	}
}

func TestCoverageHits(t *testing.T) {
	cs := MustCS(2, 32)
	sink := &recordingCov{}
	acc := NewVirtualAccessor(cs.Space())
	if err := cs.Run([]float64{1, 1}, &Env{Acc: acc, Cov: sink}); err != nil {
		t.Fatal(err)
	}
	if len(sink.edges) == 0 {
		t.Error("no coverage edges recorded")
	}
	// Nil coverage must not panic.
	if err := cs.Run([]float64{1, 1}, &Env{Acc: acc}); err != nil {
		t.Fatal(err)
	}
}

type recordingCov struct {
	edges map[uint32]int
}

func (r *recordingCov) Hit(e uint32) {
	if r.edges == nil {
		r.edges = map[uint32]int{}
	}
	r.edges[e]++
}
