package workload

import (
	"testing"

	"repro/internal/array"
)

func TestPRLRunReadsRing(t *testing.T) {
	p := MustPRL(32, 32)
	// Box 20x24: border thickness 2.
	set, err := RunOnVirtual(p, []float64{20, 24})
	if err != nil {
		t.Fatal(err)
	}
	if set.Empty() {
		t.Fatal("valid PRL run read nothing")
	}
	// Corners and edges of the box are read.
	for _, ix := range []array.Index{
		array.NewIndex(0, 0), array.NewIndex(19, 23),
		array.NewIndex(0, 23), array.NewIndex(19, 0),
		array.NewIndex(10, 1), array.NewIndex(1, 10),
		array.NewIndex(18, 10), array.NewIndex(10, 22),
	} {
		if !set.Contains(ix) {
			t.Errorf("border index %v not read", ix)
		}
	}
	// Deep interior is not.
	if set.Contains(array.NewIndex(10, 10)) {
		t.Error("interior index read by border-only program")
	}
	// Outside the box is not.
	if set.Contains(array.NewIndex(25, 25)) {
		t.Error("outside-box index read")
	}
}

func TestPRL3DRunReadsShell(t *testing.T) {
	p := MustPRL(16, 16, 16)
	lo := p.Params()[0].Lo
	set, err := RunOnVirtual(p, []float64{float64(lo), float64(lo), float64(lo)})
	if err != nil {
		t.Fatal(err)
	}
	if set.Empty() {
		t.Fatal("valid PRL3D run read nothing")
	}
	// A face point is read, the box center is not.
	if !set.Contains(array.NewIndex(0, 3, 3)) {
		t.Error("face index not read")
	}
	center := lo / 2
	if set.Contains(array.NewIndex(center, center, center)) {
		t.Error("interior index read")
	}
}

func TestCornerBlocksRun3D(t *testing.T) {
	for _, mk := range []func(...int) (*CornerBlocks, error){NewLDC, NewRDC} {
		p, err := mk(16, 16, 16)
		if err != nil {
			t.Fatal(err)
		}
		set, err := RunOnVirtual(p, []float64{2, 3, 4})
		if err != nil {
			t.Fatal(err)
		}
		// Two blocks of 2*3*4 cells each, disjoint.
		if set.Len() != 2*2*3*4 {
			t.Errorf("%s read %d cells, want %d", p.Name(), set.Len(), 2*2*3*4)
		}
		// The exact center is never part of a quarter-extent corner
		// block.
		if set.Contains(array.NewIndex(8, 8, 8)) {
			t.Errorf("%s read the center", p.Name())
		}
	}
}

func TestCornerBlocksOutOfTheta(t *testing.T) {
	p := MustLDC(32, 32)
	// Block extent above the quarter cap: not a supported run.
	set, err := RunOnVirtual(p, []float64{20, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !set.Empty() {
		t.Error("out-of-Θ corner run accessed data")
	}
}

func TestARDRunShape(t *testing.T) {
	a, err := NewARD(16, 20, 8, 2, 6, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	set, err := RunOnVirtual(a, []float64{4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	// Block 4x5 at time plane 6.
	if set.Len() != 4*5 {
		t.Fatalf("ARD read %d cells, want 20", set.Len())
	}
	set.Each(func(ix array.Index) bool {
		if ix[0] >= 4 || ix[1] >= 5 || ix[2] != 6 {
			t.Fatalf("ARD index %v outside block", ix)
		}
		return true
	})
	// Out-of-range time: nothing.
	set, err = RunOnVirtual(a, []float64{4, 5, 99})
	if err != nil {
		t.Fatal(err)
	}
	if !set.Empty() {
		t.Error("out-of-Θ ARD run accessed data")
	}
}

func TestMSIRunShape(t *testing.T) {
	m, err := NewMSI(6, 7, 40, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	set, err := RunOnVirtual(m, []float64{2, 3, 15})
	if err != nil {
		t.Fatal(err)
	}
	// Spectral line z=15..20 at pixel (2,3): 6 cells.
	if set.Len() != 6 {
		t.Fatalf("MSI read %d cells, want 6", set.Len())
	}
	set.Each(func(ix array.Index) bool {
		if ix[0] != 2 || ix[1] != 3 || ix[2] < 15 || ix[2] > 20 {
			t.Fatalf("MSI index %v outside line", ix)
		}
		return true
	})
}

func TestForSpaceValidation(t *testing.T) {
	if _, err := ForSpace("CS2", []int{64, 32}); err == nil {
		t.Error("non-square CS should error")
	}
	if _, err := ForSpace("PRL3D", []int{16, 16}); err == nil {
		t.Error("rank mismatch should error")
	}
	if _, err := ForSpace("ARD", []int{2, 2, 2}); err == nil {
		t.Error("wrong ARD dims should error")
	}
	if _, err := ForSpace("nope", []int{2, 2}); err == nil {
		t.Error("unknown name should error")
	}
	p, err := ForSpace("RDC3D", []int{32, 32, 32})
	if err != nil || p.Name() != "RDC3D" {
		t.Errorf("ForSpace(RDC3D) = %v, %v", p, err)
	}
	// ARD/MSI resolve at their fixed default dims.
	ard := DefaultARD()
	if _, err := ForSpace("ARD", ard.Space().Dims()); err != nil {
		t.Errorf("ForSpace(ARD, default dims): %v", err)
	}
}
