// Package workload defines the benchmark programs Kondo is evaluated
// on and the access-model plumbing they run against.
//
// A Program models one containerized application X̄: it declares its
// parameter space Θ (paper §III) and, given a parameter value v, reads
// parts of a d-dimensional data array through an Accessor. Programs
// are deterministic functions of v — the paper's assumption that the
// accessed index set I_v depends only on v.
//
// Two Accessor implementations exist:
//
//   - VirtualAccessor records accessed indices without touching any
//     file. This mirrors the paper's experimental methodology (§V-C),
//     which replaces HDF5 read calls with loops that print the offsets
//     that would have been accessed.
//   - FileAccessor reads a real sdf dataset (optionally through the
//     trace layer), used for end-to-end carving and the audit-overhead
//     experiment (§V-D6).
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/array"
	"repro/internal/sdf"
)

// Accessor is how a program touches its data array.
type Accessor interface {
	// Space returns the index space of the data array.
	Space() array.Space
	// ReadElement reads one element.
	ReadElement(ix array.Index) (float64, error)
	// ReadSlab reads the dense block of shape count anchored at start.
	ReadSlab(start, count []int) ([]float64, error)
}

// Coverage receives branch-edge hits from instrumented programs. It is
// the hook the AFL baseline's code-coverage loop plugs into; Kondo
// itself never uses it (its fuzzer maximizes data coverage, not code
// coverage).
type Coverage interface {
	Hit(edge uint32)
}

// Env carries the execution environment of one program run.
type Env struct {
	Acc Accessor
	Cov Coverage
}

// Hit reports a branch-edge hit if a coverage sink is attached.
func (e *Env) Hit(edge uint32) {
	if e.Cov != nil {
		e.Cov.Hit(edge)
	}
}

// ParamRange is one dimension Θ_i of the parameter space: an inclusive
// integer interval. Programs receive float64 parameter values (the
// fuzzer mutates in ℝ) and round them; Lo and Hi bound the supported
// valuations the container creator advertises.
type ParamRange struct {
	Name string
	Lo   int
	Hi   int
}

// Width returns the number of integer valuations in the range.
func (r ParamRange) Width() int64 { return int64(r.Hi) - int64(r.Lo) + 1 }

// Contains reports whether the (rounded) value lies in the range.
func (r ParamRange) Contains(v float64) bool {
	iv := RoundParam(v)
	return iv >= r.Lo && iv <= r.Hi
}

// ParamSpace is the full parameter space Θ = (Θ_1, ..., Θ_m).
type ParamSpace []ParamRange

// Valuations returns |Θ|, the total number of integer parameter
// valuations.
func (ps ParamSpace) Valuations() int64 {
	n := int64(1)
	for _, r := range ps {
		n *= r.Width()
	}
	return n
}

// Contains reports whether v ∈ Θ.
func (ps ParamSpace) Contains(v []float64) bool {
	if len(v) != len(ps) {
		return false
	}
	for i, r := range ps {
		if !r.Contains(v[i]) {
			return false
		}
	}
	return true
}

// Sample draws one parameter value uniformly at random from Θ.
func (ps ParamSpace) Sample(rng *rand.Rand) []float64 {
	v := make([]float64, len(ps))
	for i, r := range ps {
		v[i] = float64(r.Lo + rng.Intn(int(r.Width())))
	}
	return v
}

// Clamp returns v with every coordinate clamped into its range.
func (ps ParamSpace) Clamp(v []float64) []float64 {
	out := make([]float64, len(v))
	for i := range v {
		out[i] = math.Max(float64(ps[i].Lo), math.Min(float64(ps[i].Hi), v[i]))
	}
	return out
}

// EachValuation enumerates every integer valuation of Θ in
// lexicographic order, calling fn with a reused slice; it stops early
// if fn returns false. This is the brute-force baseline's iteration
// order.
func (ps ParamSpace) EachValuation(fn func(v []float64) bool) {
	v := make([]float64, len(ps))
	cur := make([]int, len(ps))
	for i, r := range ps {
		cur[i] = r.Lo
	}
	for {
		for i := range cur {
			v[i] = float64(cur[i])
		}
		if !fn(v) {
			return
		}
		k := len(cur) - 1
		for k >= 0 {
			cur[k]++
			if cur[k] <= ps[k].Hi {
				break
			}
			cur[k] = ps[k].Lo
			k--
		}
		if k < 0 {
			return
		}
	}
}

// RoundParam converts a fuzzer-produced float parameter to the integer
// valuation the program actually runs with.
func RoundParam(v float64) int {
	return int(math.Round(v))
}

// Program is one benchmark application.
type Program interface {
	// Name is the benchmark identifier (CS1, PRL2D, ARD, ...).
	Name() string
	// Description explains the access pattern.
	Description() string
	// Space returns the data-array space the program expects.
	Space() array.Space
	// Params returns the program's parameter space Θ.
	Params() ParamSpace
	// Run executes the program on parameter value v against env.
	// Invalid or not-useful parameter values perform no reads and
	// return nil; I/O failures return an error.
	Run(v []float64, env *Env) error
}

// AnalyticTruth is implemented by programs whose ground-truth index
// subset I_Θ has a closed form. Programs without it get ground truth
// by exhaustive enumeration (see GroundTruth).
type AnalyticTruth interface {
	// InTruth reports whether ix ∈ I_Θ.
	InTruth(ix array.Index) bool
}

// VirtualAccessor records accessed indices without real I/O. Element
// values are synthesized from the index so programs can still compute
// on them.
type VirtualAccessor struct {
	space array.Space
	set   *array.IndexSet
}

// NewVirtualAccessor returns an accessor over space recording into a
// fresh index set.
func NewVirtualAccessor(space array.Space) *VirtualAccessor {
	return &VirtualAccessor{space: space, set: array.NewIndexSet(space)}
}

// Space implements Accessor.
func (a *VirtualAccessor) Space() array.Space { return a.space }

// Accessed returns the set of indices read so far.
func (a *VirtualAccessor) Accessed() *array.IndexSet { return a.set }

// ResetAccessed replaces the recording set with an empty one and
// returns the previous set.
func (a *VirtualAccessor) ResetAccessed() *array.IndexSet {
	old := a.set
	a.set = array.NewIndexSet(a.space)
	return old
}

// ReadElement implements Accessor.
func (a *VirtualAccessor) ReadElement(ix array.Index) (float64, error) {
	lin, err := a.space.Linear(ix)
	if err != nil {
		return 0, err
	}
	a.set.AddLinear(lin)
	return float64(lin), nil
}

// ReadSlab implements Accessor.
func (a *VirtualAccessor) ReadSlab(start, count []int) ([]float64, error) {
	sel := sdf.Slab(start, count)
	if err := sel.Validate(a.space); err != nil {
		return nil, err
	}
	out := make([]float64, 0, sel.NumElements())
	sel.Each(func(ix array.Index) bool {
		lin, _ := a.space.Linear(ix)
		a.set.AddLinear(lin)
		out = append(out, float64(lin))
		return true
	})
	return out, nil
}

// FileAccessor reads a real sdf dataset. Wrap the dataset's file in a
// trace.File to audit the accesses.
type FileAccessor struct {
	ds *sdf.Dataset
}

// NewFileAccessor returns an accessor over the dataset.
func NewFileAccessor(ds *sdf.Dataset) *FileAccessor {
	return &FileAccessor{ds: ds}
}

// Space implements Accessor.
func (a *FileAccessor) Space() array.Space { return a.ds.Space() }

// ReadElement implements Accessor.
func (a *FileAccessor) ReadElement(ix array.Index) (float64, error) {
	return a.ds.ReadElement(ix)
}

// ReadSlab implements Accessor.
func (a *FileAccessor) ReadSlab(start, count []int) ([]float64, error) {
	return a.ds.ReadHyperslab(sdf.Slab(start, count))
}

// RunOnVirtual executes p on v against a fresh virtual accessor and
// returns the accessed index set I_v. This is the paper's debloat test
// (Def. 2): no actual data accesses are made.
func RunOnVirtual(p Program, v []float64) (*array.IndexSet, error) {
	acc := NewVirtualAccessor(p.Space())
	if err := p.Run(v, &Env{Acc: acc}); err != nil {
		return nil, fmt.Errorf("workload: %s(%v): %w", p.Name(), v, err)
	}
	return acc.Accessed(), nil
}
