package workload

import (
	"testing"

	"repro/internal/array"
)

func TestWithParamsValidation(t *testing.T) {
	p := MustCS(2, 64)
	if _, err := WithParams(p, ParamSpace{{Lo: 0, Hi: 10}}); err == nil {
		t.Error("arity mismatch should error")
	}
	if _, err := WithParams(p, ParamSpace{{Lo: 0, Hi: 100}, {Lo: 0, Hi: 10}}); err == nil {
		t.Error("range exceeding the program's should error")
	}
	r, err := WithParams(p, ParamSpace{{Lo: 0, Hi: 10}, {Lo: 0, Hi: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != p.Name() {
		t.Errorf("Name = %q", r.Name())
	}
	if r.Params().Valuations() != 121 {
		t.Errorf("|Θ| = %d, want 121", r.Params().Valuations())
	}
	// Parameter names inherited from the program.
	if r.Params()[0].Name != "stepX" {
		t.Errorf("param name = %q", r.Params()[0].Name)
	}
}

func TestRestrictedThetaShrinksSubset(t *testing.T) {
	// The paper's §I-A point: the same program with a narrower
	// advertised Θ needs less data. Restrict CS2 to steps <= 1 so
	// walks only reach the 2-wide diagonal band.
	p := MustCS(2, 64)
	r, err := WithParams(p, ParamSpace{{Lo: 0, Hi: 1}, {Lo: 0, Hi: 1}})
	if err != nil {
		t.Fatal(err)
	}
	full, err := GroundTruth(p)
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := GroundTruth(r)
	if err != nil {
		t.Fatal(err)
	}
	if narrow.Len() >= full.Len() {
		t.Fatalf("restricted truth %d not smaller than full %d", narrow.Len(), full.Len())
	}
	// The restricted truth is a subset of the full one.
	violated := false
	narrow.Each(func(ix array.Index) bool {
		if !full.Contains(ix) {
			violated = true
			return false
		}
		return true
	})
	if violated {
		t.Error("restricted truth not contained in full truth")
	}
	// Runs outside the advertised Θ access nothing even though the
	// inner program would support them.
	set, err := RunOnVirtual(r, []float64{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !set.Empty() {
		t.Error("out-of-advertised-Θ run accessed data")
	}
	// Runs inside behave identically to the inner program.
	a, err := RunOnVirtual(r, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOnVirtual(p, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("in-Θ run differs from inner program")
	}
}

func TestRestrictedNeverClaimsAnalyticTruth(t *testing.T) {
	p := MustCS(2, 32) // inner has analytic truth
	r, err := WithParams(p, ParamSpace{{Lo: 0, Hi: 3}, {Lo: 0, Hi: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := analyticOf(r); ok {
		t.Error("restricted program must not inherit the inner analytic truth")
	}
}
