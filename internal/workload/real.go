package workload

import (
	"fmt"

	"repro/internal/array"
)

// realEdgeBase spaces the instrumentation edge ids of the
// real-application programs away from other families.
const realEdgeBase = 300

// ARD models the Atmospheric River Detection application of Tang et
// al. (paper §V-D7, Table III): each run reads a block whose width and
// height are parameterized while the temporal dimension is swept by
// the third parameter. The union over Θ is the full-width × full-
// height × all-time cuboid, leaving ~97% of the file unread.
//
// The paper runs ARD against a 1536×2304×4096 (217 GB) file; this
// reproduction keeps the same geometry scaled down (default 1/8 per
// spatial step, 1/8 temporal) because the fuzzer and carver are
// size-independent (paper §V-D4). Use NewARD to choose other scales.
type ARD struct {
	space array.Space
	rows, cols, time,
	hLo, hHi, wLo, wHi int
}

// NewARD returns an ARD program over a rows×cols×time array reading
// height∈[hLo,hHi], width∈[wLo,wHi] blocks at a parameterized time
// plane.
func NewARD(rows, cols, time, hLo, hHi, wLo, wHi int) (*ARD, error) {
	if hHi > rows || wHi > cols || hLo < 1 || wLo < 1 || hLo > hHi || wLo > wHi {
		return nil, fmt.Errorf("workload: ARD block ranges [%d,%d]x[%d,%d] invalid for %dx%d",
			hLo, hHi, wLo, wHi, rows, cols)
	}
	return &ARD{
		space: array.MustSpace(rows, cols, time),
		rows:  rows, cols: cols, time: time,
		hLo: hLo, hHi: hHi, wLo: wLo, wHi: wHi,
	}, nil
}

// DefaultARD returns the Table III configuration scaled by 1/8:
// 192×288×512 array, height ∈ [12,62], width ∈ [6,25], time ∈ [0,511].
// The kept fraction (62·25)/(192·288) ≈ 2.8% matches the paper's
// 97.20% debloat.
func DefaultARD() *ARD {
	a, err := NewARD(192, 288, 512, 12, 62, 6, 25)
	if err != nil {
		panic(err)
	}
	return a
}

// Name implements Program.
func (a *ARD) Name() string { return "ARD" }

// Description implements Program.
func (a *ARD) Description() string {
	return "atmospheric river detection: parameterized-width/height block at a time plane, full temporal sweep"
}

// Space implements Program.
func (a *ARD) Space() array.Space { return a.space }

// Params implements Program.
func (a *ARD) Params() ParamSpace {
	return ParamSpace{
		{Name: "height", Lo: a.hLo, Hi: a.hHi},
		{Name: "width", Lo: a.wLo, Hi: a.wHi},
		{Name: "time", Lo: 0, Hi: a.time - 1},
	}
}

// Run implements Program.
func (a *ARD) Run(v []float64, env *Env) error {
	if len(v) != 3 {
		return fmt.Errorf("workload: ARD wants 3 parameters, got %d", len(v))
	}
	h, w, t := RoundParam(v[0]), RoundParam(v[1]), RoundParam(v[2])
	if h < a.hLo || h > a.hHi || w < a.wLo || w > a.wHi || t < 0 || t > a.time-1 {
		env.Hit(realEdgeBase + 0)
		return nil // outside Θ
	}
	env.Hit(realEdgeBase + 1)
	_, err := env.Acc.ReadSlab([]int{0, 0, t}, []int{h, w, 1})
	return err
}

// InTruth implements AnalyticTruth: the union over Θ is the maximal
// block extruded through all time planes.
func (a *ARD) InTruth(ix array.Index) bool {
	return ix[0] < a.hHi && ix[1] < a.wHi
}

// MSI models the Mass Spectrometry Imaging application of Tang et al.
// (paper §V-D7, Table III): two dimensions are read entirely while the
// third (spectral) dimension is read from a parameterized start index
// up to a fixed end. Each run reads the spectral line of one (x, y)
// pixel; the union over Θ is the full x×y plane × the reachable
// spectral band, leaving ~96% of the file unread.
//
// The paper's file is 394×518×133092 (405 GB); the default here keeps
// the x/y geometry scaled by 1/4 and the spectral axis by 1/256.
type MSI struct {
	space array.Space
	nx, ny, nz,
	zLo, zHi int // start-index parameter range; reads [zStart, zHi]
}

// NewMSI returns an MSI program over an nx×ny×nz array whose runs read
// spectral range [zStart, zHi] with zStart ∈ [zLo, zHi].
func NewMSI(nx, ny, nz, zLo, zHi int) (*MSI, error) {
	if zHi >= nz || zLo < 0 || zLo > zHi {
		return nil, fmt.Errorf("workload: MSI spectral range [%d,%d] invalid for extent %d", zLo, zHi, nz)
	}
	return &MSI{space: array.MustSpace(nx, ny, nz), nx: nx, ny: ny, nz: nz, zLo: zLo, zHi: zHi}, nil
}

// DefaultMSI returns the Table III configuration scaled to a
// 99×130×520 array with spectral start ∈ [39,58] and fixed end 58. The
// kept fraction 20/520 ≈ 3.8% matches the paper's 96.24% debloat.
func DefaultMSI() *MSI {
	m, err := NewMSI(99, 130, 520, 39, 58)
	if err != nil {
		panic(err)
	}
	return m
}

// Name implements Program.
func (m *MSI) Name() string { return "MSI" }

// Description implements Program.
func (m *MSI) Description() string {
	return "mass spectrometry imaging: full-plane pixels, spectral dimension read from a parameterized start"
}

// Space implements Program.
func (m *MSI) Space() array.Space { return m.space }

// Params implements Program.
func (m *MSI) Params() ParamSpace {
	return ParamSpace{
		{Name: "x", Lo: 0, Hi: m.nx - 1},
		{Name: "y", Lo: 0, Hi: m.ny - 1},
		{Name: "zstart", Lo: m.zLo, Hi: m.zHi},
	}
}

// Run implements Program.
func (m *MSI) Run(v []float64, env *Env) error {
	if len(v) != 3 {
		return fmt.Errorf("workload: MSI wants 3 parameters, got %d", len(v))
	}
	x, y, zs := RoundParam(v[0]), RoundParam(v[1]), RoundParam(v[2])
	if x < 0 || x >= m.nx || y < 0 || y >= m.ny || zs < m.zLo || zs > m.zHi {
		env.Hit(realEdgeBase + 10)
		return nil // outside Θ
	}
	env.Hit(realEdgeBase + 11)
	_, err := env.Acc.ReadSlab([]int{x, y, zs}, []int{1, 1, m.zHi - zs + 1})
	return err
}

// InTruth implements AnalyticTruth: every pixel's spectral band
// [zLo, zHi] is reachable.
func (m *MSI) InTruth(ix array.Index) bool {
	return ix[2] >= m.zLo && ix[2] <= m.zHi
}
