package workload

import (
	"testing"

	"repro/internal/array"
)

// TestAnalyticTruthMatchesExhaustive is the load-bearing correctness
// check of the benchmark suite: for every program claiming a
// closed-form ground truth, the analytic predicate must agree exactly
// with exhaustive enumeration over Θ on a small instance.
func TestAnalyticTruthMatchesExhaustive(t *testing.T) {
	progs := []Program{
		MustCS(1, 24), MustCS(2, 24), MustCS(3, 24), MustCS(4, 24), MustCS(5, 24),
		MustPRL(24, 24), MustPRL(16, 16, 16),
		MustLDC(24, 24), MustRDC(24, 24),
		MustLDC(16, 16, 16), MustRDC(16, 16, 16),
	}
	for _, p := range progs {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			at, ok := analyticOf(p)
			if !ok {
				t.Fatalf("%s should have analytic truth", p.Name())
			}
			exact, err := ExhaustiveTruth(p)
			if err != nil {
				t.Fatal(err)
			}
			mismatches := 0
			p.Space().Each(func(ix array.Index) bool {
				a := at.InTruth(ix)
				e := exact.Contains(ix)
				if a != e {
					mismatches++
					if mismatches <= 5 {
						t.Errorf("%s: index %v analytic=%v exhaustive=%v", p.Name(), ix, a, e)
					}
				}
				return true
			})
			if mismatches > 0 {
				t.Fatalf("%s: %d mismatching indices", p.Name(), mismatches)
			}
		})
	}
}

// TestARDMSITruthMatchesExhaustive verifies the two real-application
// models on tiny instances.
func TestARDMSITruthMatchesExhaustive(t *testing.T) {
	ard, err := NewARD(16, 20, 8, 2, 6, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	msi, err := NewMSI(6, 7, 40, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Program{ard, msi} {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			at, ok := analyticOf(p)
			if !ok {
				t.Fatal("missing analytic truth")
			}
			exact, err := ExhaustiveTruth(p)
			if err != nil {
				t.Fatal(err)
			}
			p.Space().Each(func(ix array.Index) bool {
				if at.InTruth(ix) != exact.Contains(ix) {
					t.Fatalf("index %v: analytic=%v exhaustive=%v",
						ix, at.InTruth(ix), exact.Contains(ix))
				}
				return true
			})
		})
	}
}

func TestCS3WedgeShape(t *testing.T) {
	cs3 := MustCS(3, 32)
	gt, err := GroundTruth(cs3)
	if err != nil {
		t.Fatal(err)
	}
	if gt.Empty() {
		t.Error("CS3 ground truth empty")
	}
	// Inside the slope-1..2 wedge.
	if !gt.Contains(array.NewIndex(10, 10)) || !gt.Contains(array.NewIndex(10, 19)) {
		t.Error("wedge interior missing from CS3 truth")
	}
	// Below the diagonal and above slope 2 are unreachable (modulo
	// the 2x2 stencil dilation).
	if gt.Contains(array.NewIndex(30, 5)) || gt.Contains(array.NewIndex(5, 30)) {
		t.Error("off-wedge cell present in CS3 truth")
	}
	// The useful fraction of Θ is scale-invariant (the wedge between
	// slopes 1 and 2 covers ~1/4 of the step plane minus the
	// diagonal), which is what makes CS3 the Fig. 11a size-sweep
	// program.
	useful := 0
	cs3.Params().EachValuation(func(v []float64) bool {
		set, err := RunOnVirtual(cs3, v)
		if err != nil {
			t.Fatal(err)
		}
		if !set.Empty() {
			useful++
		}
		return true
	})
	frac := float64(useful) / float64(cs3.Params().Valuations())
	if frac < 0.1 || frac > 0.4 {
		t.Errorf("useful fraction = %.3f, want a size-stable ~0.25", frac)
	}
}

func TestGroundTruthUsesAnalyticPath(t *testing.T) {
	// For a program with analytic truth, GroundTruth must equal the
	// rasterized predicate.
	p := MustLDC(32, 32)
	gt, err := GroundTruth(p)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	p.Space().Each(func(ix array.Index) bool {
		if p.InTruth(ix) {
			want++
			if !gt.Contains(ix) {
				t.Fatalf("truth missing %v", ix)
			}
		}
		return true
	})
	if gt.Len() != want {
		t.Errorf("truth has %d indices, want %d", gt.Len(), want)
	}
	// LDC over 32x32: two 8x8 corner blocks.
	if want != 128 {
		t.Errorf("LDC2D(32) truth size = %d, want 128", want)
	}
}

func TestPRLHoleExists(t *testing.T) {
	p := MustPRL(32, 32)
	gt, err := GroundTruth(p)
	if err != nil {
		t.Fatal(err)
	}
	// Hole: rows/cols in [2, 14), e.g. (8, 8).
	if gt.Contains(array.NewIndex(8, 8)) {
		t.Error("PRL hole cell (8,8) should be unread")
	}
	if !gt.Contains(array.NewIndex(0, 8)) || !gt.Contains(array.NewIndex(8, 0)) ||
		!gt.Contains(array.NewIndex(31, 31)) || !gt.Contains(array.NewIndex(14, 8)) {
		t.Error("PRL border bands missing")
	}
}

func TestCornerSeparation(t *testing.T) {
	// LDC and RDC regions must be disjoint pairs at opposite corners.
	ldc := MustLDC(32, 32)
	rdc := MustRDC(32, 32)
	if !ldc.InTruth(array.NewIndex(0, 0)) || !ldc.InTruth(array.NewIndex(31, 31)) {
		t.Error("LDC corners wrong")
	}
	if ldc.InTruth(array.NewIndex(0, 31)) || ldc.InTruth(array.NewIndex(31, 0)) {
		t.Error("LDC covers anti-diagonal corners")
	}
	if !rdc.InTruth(array.NewIndex(0, 31)) || !rdc.InTruth(array.NewIndex(31, 0)) {
		t.Error("RDC corners wrong")
	}
	if rdc.InTruth(array.NewIndex(0, 0)) || rdc.InTruth(array.NewIndex(31, 31)) {
		t.Error("RDC covers main-diagonal corners")
	}
	if ldc.InTruth(array.NewIndex(16, 16)) {
		t.Error("center should be unread")
	}
}

func TestDefaultARDMSIDebloatFractions(t *testing.T) {
	// The analytic kept fractions must match Table III's shape:
	// ARD ≈ 97.2% debloat, MSI ≈ 96.2%.
	ard := DefaultARD()
	ardKept := float64(62*25) / float64(192*288)
	if got := 1 - ardKept; got < 0.97 || got > 0.975 {
		t.Errorf("ARD debloat fraction = %v", got)
	}
	msi := DefaultMSI()
	msiKept := float64(58-39+1) / 520
	if got := 1 - msiKept; got < 0.96 || got > 0.965 {
		t.Errorf("MSI debloat fraction = %v", got)
	}
	// And the programs' truths must realize those fractions.
	for _, c := range []struct {
		p    Program
		want float64
	}{{ard, ardKept}, {msi, msiKept}} {
		gt, err := GroundTruth(c.p)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(gt.Len()) / float64(c.p.Space().Size())
		if diff := got - c.want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s kept fraction = %v, want %v", c.p.Name(), got, c.want)
		}
	}
}

func TestNewProgramValidation(t *testing.T) {
	if _, err := NewCS(9, 128); err == nil {
		t.Error("unknown CS variant should error")
	}
	if _, err := NewCS(2, 4); err == nil {
		t.Error("tiny CS extent should error")
	}
	if _, err := NewPRL(128); err == nil {
		t.Error("rank-1 PRL should error")
	}
	if _, err := NewLDC(8, 8, 8, 8); err == nil {
		t.Error("rank-4 LDC should error")
	}
	if _, err := NewARD(10, 10, 10, 5, 20, 1, 2); err == nil {
		t.Error("ARD block exceeding rows should error")
	}
	if _, err := NewMSI(5, 5, 10, 8, 12); err == nil {
		t.Error("MSI range exceeding extent should error")
	}
}
