package workload

import (
	"fmt"

	"repro/internal/array"
)

// CrossStencil is the Listing-1 family of programs: starting at (0,0),
// the program repeatedly reads the 2×2 cross stencil at the current
// cell — (i,j), (i+1,j), (i,j+1), (i+1,j+1) — and advances by
// (stepX, stepY), while both coordinates stay in bounds. A constraint
// over (stepX, stepY) decides which parameter valuations are useful;
// the five CS variants (paper Table II's CS family) differ only in
// that constraint:
//
//	CS1: 5 ≤ stepX ≤ stepY        — isolated origin block, then a
//	                                 distant dense band (sparse gap
//	                                 costs precision, as in §V-D2)
//	CS2: stepX ≤ stepY            — the Listing-1 base: lower
//	                                 triangular band
//	CS3: stepX ≤ stepY ≤ 2·stepX  — a wedge between slopes 1 and 2;
//	                                 the multiplicative band keeps the
//	                                 useful fraction of Θ constant as
//	                                 the array grows, so it is the
//	                                 Fig. 11a size-sweep program
//	CS4: 2·stepX ≤ stepY          — shallow-slope band
//	CS5: stepX ≤ stepY, stepY ≥ 10 — origin block isolated from a
//	                                 dense upper region by a gap
type CrossStencil struct {
	name       string
	desc       string
	space      array.Space
	n          int
	constraint func(sx, sy int) bool
	// cellOK, when non-nil, is the closed-form predicate for the set
	// of stencil anchor cells reachable over all valid parameter
	// values; the ground truth is its dilation by the 2×2 stencil.
	cellOK func(u, v int) bool
}

// stencilEdgeBase spaces the instrumentation edge ids of stencil
// programs away from other program families.
const stencilEdgeBase = 100

// NewCS returns cross-stencil variant CS1..CS5 over an n×n array.
func NewCS(variant, n int) (*CrossStencil, error) {
	if n < 16 {
		return nil, fmt.Errorf("workload: CS array extent %d too small", n)
	}
	cs := &CrossStencil{
		name:  fmt.Sprintf("CS%d", variant),
		space: array.MustSpace(n, n),
		n:     n,
	}
	switch variant {
	case 1:
		cs.desc = "cross stencil, 5 <= stepX <= stepY: origin block plus distant band"
		cs.constraint = func(sx, sy int) bool { return 5 <= sx && sx <= sy }
		cs.cellOK = func(u, v int) bool { return (u == 0 && v == 0) || (5 <= u && u <= v) }
	case 2:
		cs.desc = "cross stencil, stepX <= stepY: lower triangular band (Listing 1)"
		cs.constraint = func(sx, sy int) bool { return 0 <= sx && sx <= sy }
		cs.cellOK = func(u, v int) bool { return u <= v }
	case 3:
		cs.desc = "cross stencil, stepX <= stepY <= 2*stepX: wedge between slopes 1 and 2"
		cs.constraint = func(sx, sy int) bool { return 0 <= sx && sx <= sy && sy <= 2*sx }
		// Step multiples preserve the slope ratio, so the reachable
		// cells are exactly the wedge (with (0,0) as the sx=sy=0
		// case).
		cs.cellOK = func(u, v int) bool { return u <= v && v <= 2*u }
	case 4:
		cs.desc = "cross stencil, 2*stepX <= stepY: shallow-slope band"
		cs.constraint = func(sx, sy int) bool { return 0 <= sx && 2*sx <= sy }
		cs.cellOK = func(u, v int) bool { return 2*u <= v }
	case 5:
		cs.desc = "cross stencil, stepX <= stepY >= 10: origin block plus gapped upper region"
		cs.constraint = func(sx, sy int) bool { return 0 <= sx && sx <= sy && sy >= 10 }
		cs.cellOK = func(u, v int) bool { return (u == 0 && v == 0) || (u <= v && v >= 10) }
	default:
		return nil, fmt.Errorf("workload: unknown CS variant %d", variant)
	}
	return cs, nil
}

// MustCS is NewCS that panics on error.
func MustCS(variant, n int) *CrossStencil {
	cs, err := NewCS(variant, n)
	if err != nil {
		panic(err)
	}
	return cs
}

// Name implements Program.
func (cs *CrossStencil) Name() string { return cs.name }

// Description implements Program.
func (cs *CrossStencil) Description() string { return cs.desc }

// Space implements Program.
func (cs *CrossStencil) Space() array.Space { return cs.space }

// Params implements Program. Following §V-D4, the step ranges extend
// to the maximum dataset extent.
func (cs *CrossStencil) Params() ParamSpace {
	return ParamSpace{
		{Name: "stepX", Lo: 0, Hi: cs.n - 1},
		{Name: "stepY", Lo: 0, Hi: cs.n - 1},
	}
}

// Run implements Program.
func (cs *CrossStencil) Run(v []float64, env *Env) error {
	if len(v) != 2 {
		return fmt.Errorf("workload: %s wants 2 parameters, got %d", cs.name, len(v))
	}
	sx, sy := RoundParam(v[0]), RoundParam(v[1])
	if sx < 0 || sy < 0 || sx > cs.n-1 || sy > cs.n-1 {
		env.Hit(stencilEdgeBase + 0)
		return nil // outside Θ: not a supported run
	}
	if !cs.constraint(sx, sy) {
		env.Hit(stencilEdgeBase + 1)
		return nil // fails the Listing-1 guard: reads nothing
	}
	env.Hit(stencilEdgeBase + 2)
	i, j := 0, 0
	for i+1 <= cs.n-1 && j+1 <= cs.n-1 {
		env.Hit(stencilEdgeBase + 3)
		for _, d := range [4][2]int{{0, 0}, {1, 0}, {0, 1}, {1, 1}} {
			if _, err := env.Acc.ReadElement(array.NewIndex(i+d[0], j+d[1])); err != nil {
				return err
			}
		}
		if sx == 0 && sy == 0 {
			env.Hit(stencilEdgeBase + 4)
			break
		}
		i += sx
		j += sy
	}
	return nil
}

// InTruth implements AnalyticTruth for variants with a closed-form
// reachable-cell predicate. Variants without one (CS3) do not satisfy
// AnalyticTruth; assert for the interface before calling.
func (cs *CrossStencil) InTruth(ix array.Index) bool {
	if cs.cellOK == nil {
		panic(fmt.Sprintf("workload: %s has no analytic ground truth", cs.name))
	}
	x, y := ix[0], ix[1]
	for _, d := range [4][2]int{{0, 0}, {1, 0}, {0, 1}, {1, 1}} {
		u, v := x-d[0], y-d[1]
		if u < 0 || v < 0 || u > cs.n-2 || v > cs.n-2 {
			continue
		}
		if cs.cellOK(u, v) {
			return true
		}
	}
	return false
}

// HasAnalyticTruth reports whether this variant carries a closed-form
// ground truth.
func (cs *CrossStencil) HasAnalyticTruth() bool { return cs.cellOK != nil }
