// Package viz renders Kondo's spatial artifacts — index subsets, fuzz
// campaigns, and carved hulls — as standalone SVG documents, so the
// paper's visual figures (Fig. 1's accessed region, Fig. 4's schedule
// scatter, Fig. 6's hull merging) can be regenerated as images using
// only the standard library.
package viz

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/array"
	"repro/internal/fuzz"
	"repro/internal/geom"
	"repro/internal/hull"
)

// palette used across renderings (colorblind-safe-ish).
const (
	colorAccessed  = "#2166ac" // blue: accessed/true indices
	colorApprox    = "#fddbc7" // light red: approximated cover
	colorHull      = "#b2182b" // red: hull outlines
	colorUseful    = "#1a9850" // green: useful seeds
	colorNonUseful = "#d73027" // red: non-useful seeds
	colorGrid      = "#eeeeee"
)

// svgDoc accumulates an SVG document with a fixed pixel size and a
// logical coordinate box.
type svgDoc struct {
	b             strings.Builder
	width, height float64
	sx, sy        float64 // logical→pixel scale
}

// newSVG starts a document mapping the logical box [0,w)×[0,h) onto
// pixelW×pixelH pixels. Logical x maps to the horizontal axis.
func newSVG(w, h float64, pixelW, pixelH int) *svgDoc {
	d := &svgDoc{
		width:  float64(pixelW),
		height: float64(pixelH),
		sx:     float64(pixelW) / w,
		sy:     float64(pixelH) / h,
	}
	fmt.Fprintf(&d.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		pixelW, pixelH, pixelW, pixelH)
	fmt.Fprintf(&d.b, `<rect width="%d" height="%d" fill="white"/>`+"\n", pixelW, pixelH)
	return d
}

func (d *svgDoc) rect(x, y, w, h float64, fill string) {
	fmt.Fprintf(&d.b, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s"/>`+"\n",
		x*d.sx, y*d.sy, w*d.sx, h*d.sy, fill)
}

func (d *svgDoc) circle(x, y, r float64, fill string) {
	fmt.Fprintf(&d.b, `<circle cx="%.2f" cy="%.2f" r="%.2f" fill="%s"/>`+"\n",
		x*d.sx, y*d.sy, r, fill)
}

func (d *svgDoc) polygon(pts []geom.Point, stroke string, strokeWidth float64) {
	var coords []string
	for _, p := range pts {
		coords = append(coords, fmt.Sprintf("%.2f,%.2f", p[0]*d.sx, p[1]*d.sy))
	}
	fmt.Fprintf(&d.b, `<polygon points="%s" fill="none" stroke="%s" stroke-width="%.1f"/>`+"\n",
		strings.Join(coords, " "), stroke, strokeWidth)
}

func (d *svgDoc) title(s string) {
	fmt.Fprintf(&d.b, `<title>%s</title>`+"\n", s)
}

func (d *svgDoc) finish(w io.Writer) error {
	d.b.WriteString("</svg>\n")
	_, err := io.WriteString(w, d.b.String())
	return err
}

// pixelSize picks a rendering scale so small arrays are visible and
// large ones stay bounded.
func pixelSize(extent int) int {
	px := extent * 4
	if px < 256 {
		px = 256
	}
	if px > 1024 {
		px = 1024
	}
	return px
}

// IndexSetSVG renders a 2D index subset (e.g. a ground truth or the
// carved approximation) as a raster of filled cells — the Fig. 1 /
// Table I view. Dimension 0 is drawn on the x axis.
func IndexSetSVG(w io.Writer, set *array.IndexSet, title string) error {
	space := set.Space()
	if space.Rank() != 2 {
		return fmt.Errorf("viz: IndexSetSVG wants a 2D space, got rank %d", space.Rank())
	}
	d := newSVG(float64(space.Dim(0)), float64(space.Dim(1)),
		pixelSize(space.Dim(0)), pixelSize(space.Dim(1)))
	d.title(title)
	set.Each(func(ix array.Index) bool {
		d.rect(float64(ix[0]), float64(ix[1]), 1, 1, colorAccessed)
		return true
	})
	return d.finish(w)
}

// ScatterSVG renders a fuzz campaign's evaluated parameter values as
// the Fig. 4 scatter: useful values in green, non-useful in red, over
// the first two parameter dimensions.
func ScatterSVG(w io.Writer, seeds []fuzz.SeedRecord, loX, hiX, loY, hiY float64, title string) error {
	if hiX <= loX || hiY <= loY {
		return fmt.Errorf("viz: empty parameter box")
	}
	const px = 640
	d := newSVG(hiX-loX, hiY-loY, px, px)
	d.title(title)
	for _, s := range seeds {
		if len(s.V) < 2 {
			continue
		}
		color := colorNonUseful
		if s.Useful {
			color = colorUseful
		}
		d.circle(s.V[0]-loX, s.V[1]-loY, 2.2, color)
	}
	return d.finish(w)
}

// HullsSVG renders the Fig. 6 view: the observed index points plus the
// carved hull outlines over a 2D space.
func HullsSVG(w io.Writer, points *array.IndexSet, hulls []*hull.Hull, title string) error {
	space := points.Space()
	if space.Rank() != 2 {
		return fmt.Errorf("viz: HullsSVG wants a 2D space, got rank %d", space.Rank())
	}
	d := newSVG(float64(space.Dim(0)), float64(space.Dim(1)),
		pixelSize(space.Dim(0)), pixelSize(space.Dim(1)))
	d.title(title)
	// Approximated cover first (light), then the points, then the
	// outlines on top.
	for _, h := range hulls {
		raster, err := h.Rasterize(space)
		if err != nil {
			return err
		}
		raster.Each(func(ix array.Index) bool {
			d.rect(float64(ix[0]), float64(ix[1]), 1, 1, colorApprox)
			return true
		})
	}
	points.Each(func(ix array.Index) bool {
		d.rect(float64(ix[0]), float64(ix[1]), 1, 1, colorAccessed)
		return true
	})
	for _, h := range hulls {
		verts := h.Vertices()
		if len(verts) >= 2 {
			d.polygon(verts, colorHull, 2)
		}
	}
	return d.finish(w)
}
