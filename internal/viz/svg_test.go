package viz

import (
	"strings"
	"testing"

	"repro/internal/array"
	"repro/internal/carve"
	"repro/internal/fuzz"
	"repro/internal/geom"
	"repro/internal/hull"
)

func TestIndexSetSVG(t *testing.T) {
	space := array.MustSpace(16, 16)
	set := array.NewIndexSet(space)
	set.Add(array.NewIndex(0, 0))
	set.Add(array.NewIndex(15, 15))
	var b strings.Builder
	if err := IndexSetSVG(&b, set, "test map"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Error("not a well-formed SVG document")
	}
	if strings.Count(out, "<rect") != 3 { // background + 2 cells
		t.Errorf("expected 3 rects, got %d", strings.Count(out, "<rect"))
	}
	if !strings.Contains(out, "test map") {
		t.Error("missing title")
	}
	// 3D spaces are rejected.
	set3 := array.NewIndexSet(array.MustSpace(4, 4, 4))
	if err := IndexSetSVG(&b, set3, "x"); err == nil {
		t.Error("3D space should be rejected")
	}
}

func TestScatterSVG(t *testing.T) {
	seeds := []fuzz.SeedRecord{
		{V: []float64{10, 10}, Useful: true},
		{V: []float64{50, 50}, Useful: false},
		{V: []float64{1}, Useful: true}, // short vector: skipped
	}
	var b strings.Builder
	if err := ScatterSVG(&b, seeds, 0, 100, 0, 100, "scatter"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "<circle") != 2 {
		t.Errorf("expected 2 circles, got %d", strings.Count(out, "<circle"))
	}
	if !strings.Contains(out, colorUseful) || !strings.Contains(out, colorNonUseful) {
		t.Error("missing class colors")
	}
	if err := ScatterSVG(&b, seeds, 5, 5, 0, 10, "bad"); err == nil {
		t.Error("degenerate box should error")
	}
}

func TestHullsSVG(t *testing.T) {
	space := array.MustSpace(32, 32)
	set := array.NewIndexSet(space)
	for r := 0; r < 6; r++ {
		for c := 0; c < 6; c++ {
			set.Add(array.NewIndex(r, c))
		}
	}
	hulls, err := carve.Carve(set, carve.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := HullsSVG(&b, set, hulls, "hulls"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "<polygon") {
		t.Error("missing hull outline")
	}
	if !strings.Contains(out, colorApprox) || !strings.Contains(out, colorAccessed) {
		t.Error("missing raster layers")
	}
}

func TestHullsSVGDegenerateHull(t *testing.T) {
	// A single-point hull draws no polygon but must not fail.
	space := array.MustSpace(8, 8)
	set := array.NewIndexSet(space)
	set.Add(array.NewIndex(3, 3))
	h, err := hull.New([]geom.Point{geom.NewPoint(3, 3)})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := HullsSVG(&b, set, []*hull.Hull{h}, "point"); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "<polygon") {
		t.Error("single-point hull should draw no polygon")
	}
}
