package viz

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/fuzz"
)

// CoverageSVG renders a coverage series as a convergence plot: the
// cumulative covered-index count over evaluations (blue, left axis
// normalized to the final count) with the saturation estimate overlaid
// (red, [0,1] on the same unit axis). This is the `kondo-viz
// -coverage` figure.
func CoverageSVG(w io.Writer, s *fuzz.CoverageSeries, title string) error {
	if s == nil || len(s.Points) == 0 {
		return fmt.Errorf("viz: empty coverage series")
	}
	const pxW, pxH, margin = 720, 360, 32
	final := s.Final()
	maxCovered := final.Covered
	if maxCovered == 0 {
		maxCovered = 1
	}
	maxEvals := final.Evaluations
	if maxEvals == 0 {
		maxEvals = 1
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", pxW, pxH, pxW, pxH)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", pxW, pxH)
	fmt.Fprintf(&b, `<title>%s</title>`+"\n", title)

	plotW := float64(pxW - 2*margin)
	plotH := float64(pxH - 2*margin)
	x := func(evals int) float64 {
		return float64(margin) + plotW*float64(evals)/float64(maxEvals)
	}
	y := func(frac float64) float64 {
		return float64(pxH-margin) - plotH*frac
	}

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333" stroke-width="1"/>`+"\n",
		margin, pxH-margin, pxW-margin, pxH-margin)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333" stroke-width="1"/>`+"\n",
		margin, margin, margin, pxH-margin)

	poly := func(color string, frac func(p fuzz.CoveragePoint) float64) {
		var pts []string
		pts = append(pts, fmt.Sprintf("%.1f,%.1f", x(0), y(0)))
		for _, p := range s.Points {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", x(p.Evaluations), y(frac(p))))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.Join(pts, " "), color)
	}
	poly(colorAccessed, func(p fuzz.CoveragePoint) float64 {
		return float64(p.Covered) / float64(maxCovered)
	})
	poly(colorHull, func(p fuzz.CoveragePoint) float64 { return p.Saturation })

	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12" fill="#333">%s — covered %d/%d indices, saturation %.2f, %d evals</text>`+"\n",
		margin, margin-10, title, final.Covered, s.SpaceSize, final.Saturation, final.Evaluations)
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// CoverageASCII renders the convergence plot as a terminal chart:
// covered-index trajectory (#) with the saturation estimate (~)
// overlaid, one summary line per N rounds as needed to fit the width.
func CoverageASCII(w io.Writer, s *fuzz.CoverageSeries, width, height int) error {
	if s == nil || len(s.Points) == 0 {
		return fmt.Errorf("viz: empty coverage series")
	}
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 16
	}
	final := s.Final()
	maxCovered := final.Covered
	if maxCovered == 0 {
		maxCovered = 1
	}

	// Downsample the points onto the chart columns.
	cols := width
	if len(s.Points) < cols {
		cols = len(s.Points)
	}
	covered := make([]float64, cols)
	sat := make([]float64, cols)
	for c := 0; c < cols; c++ {
		i := (c * (len(s.Points) - 1)) / max(cols-1, 1)
		covered[c] = float64(s.Points[i].Covered) / float64(maxCovered)
		sat[c] = s.Points[i].Saturation
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	rowOf := func(frac float64) int {
		r := height - 1 - int(frac*float64(height-1)+0.5)
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for c := 0; c < cols; c++ {
		grid[rowOf(sat[c])][c] = '~'
		grid[rowOf(covered[c])][c] = '#' // on collision the trajectory wins
	}

	fmt.Fprintf(w, "coverage convergence: %d rounds, %d evals, %d/%d indices, saturation %.2f\n",
		len(s.Points), final.Evaluations, final.Covered, s.SpaceSize, final.Saturation)
	for r, row := range grid {
		label := "      "
		switch r {
		case 0:
			label = "100%% |"
		case height - 1:
			label = "  0%% |"
		default:
			label = "     |"
		}
		fmt.Fprintf(w, label+"%s\n", string(row))
	}
	fmt.Fprintf(w, "     +%s\n", strings.Repeat("-", cols))
	fmt.Fprintf(w, "      0%sevals=%d\n", strings.Repeat(" ", max(cols-8-len(fmt.Sprint(final.Evaluations)), 1)), final.Evaluations)
	fmt.Fprint(w, "      # covered fraction   ~ saturation\n")
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
