package viz

import (
	"strings"
	"testing"

	"repro/internal/fuzz"
)

func series() *fuzz.CoverageSeries {
	return &fuzz.CoverageSeries{
		Dims:      []int{16, 16},
		SpaceSize: 256,
		Points: []fuzz.CoveragePoint{
			{Round: 1, Evaluations: 8, Covered: 40, New: 40, Saturation: 0},
			{Round: 2, Evaluations: 16, Covered: 90, New: 50, Saturation: 0.1},
			{Round: 3, Evaluations: 24, Covered: 110, New: 20, Saturation: 0.5},
			{Round: 4, Evaluations: 32, Covered: 112, New: 2, Saturation: 0.9},
		},
	}
}

func TestCoverageSVG(t *testing.T) {
	var b strings.Builder
	if err := CoverageSVG(&b, series(), "ARD campaign"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"<svg", "</svg>", "polyline", "ARD campaign", "112/256"} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Fatalf("want 2 polylines (coverage + saturation), got %d", got)
	}
}

func TestCoverageSVGEmpty(t *testing.T) {
	var b strings.Builder
	if err := CoverageSVG(&b, &fuzz.CoverageSeries{}, "x"); err == nil {
		t.Fatal("expected error for empty series")
	}
	if err := CoverageSVG(&b, nil, "x"); err == nil {
		t.Fatal("expected error for nil series")
	}
}

func TestCoverageASCII(t *testing.T) {
	var b strings.Builder
	if err := CoverageASCII(&b, series(), 40, 10); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "#") || !strings.Contains(out, "~") {
		t.Fatalf("chart missing trajectory glyphs:\n%s", out)
	}
	if !strings.Contains(out, "112/256") || !strings.Contains(out, "saturation 0.90") {
		t.Fatalf("summary line wrong:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines < 10 {
		t.Fatalf("chart too short (%d lines):\n%s", lines, out)
	}
}
