package orchestra

import (
	"context"
	"sync"
	"time"

	"repro/internal/array"
	"repro/internal/fuzz"
	"repro/internal/obs"
)

// pendingBatch collects one fuzz batch's per-slot outcomes as its
// leased spans complete. done closes when every slot is filled (or
// the batch is canceled); outs must only be read after that.
type pendingBatch struct {
	outs      []fuzz.BatchOut
	remaining int
	done      chan struct{}
	closed    bool
}

// lease is one leased span of a batch: a contiguous run of seeds
// starting at offset within the batch's slots.
//
// Lease state machine (transitions under the manager's lock):
//
//	open+queued   --pull-->      open+inflight (deadline armed)
//	open+inflight --complete-->  done (slots filled, first write wins)
//	open+inflight --expire-->    open+queued (attempt++, re-issued)
//	open+inflight --worker drop-> open+queued (attempt++, re-issued)
//	open+any      --cancel-->    done (batch canceled, slots skipped)
//
// A lease can be inflight with one worker while a re-issued copy of
// it is queued or inflight with another: completions are resolved
// first-write-wins, and a completion for a lease that is no longer
// open (someone else won, or the batch was canceled) is discarded and
// counted as late.
type lease struct {
	id       uint64
	campaign string
	spec     Spec
	space    array.Space
	seeds    [][]float64
	batch    *pendingBatch
	offset   int
	attempt  int
	worker   string
	inflight bool
	issuedAt time.Time // when the current attempt was handed out
	deadline time.Time
	done     bool
}

// Lease lifecycle event kinds, in the order a lease can experience
// them. A lease that completes first try emits granted then
// completed; a straggler's path reads granted, expired, reissued,
// granted (new worker), completed, late (the straggler's result).
const (
	LeaseGranted   = "granted"
	LeaseCompleted = "completed"
	LeaseExpired   = "expired"
	LeaseReissued  = "reissued"
	LeaseLate      = "late-discarded"
)

// leaseEvent is one lease lifecycle transition, captured under the
// manager's lock and delivered to the onEvent hook after it is
// released. worker is the lease-manager worker key (the fleet layer
// translates it to a display label).
type leaseEvent struct {
	kind     string
	id       uint64
	campaign string
	worker   string
	attempt  int
	seeds    int
	age      time.Duration // completed/expired: time since issuedAt
}

// leaseCounters is the lease manager's telemetry surface; every field
// is nil-safe.
type leaseCounters struct {
	issued   *obs.Counter // leases handed to a worker (re-issues included)
	expired  *obs.Counter // inflight leases whose deadline passed
	reissued *obs.Counter // leases re-queued after expiry or worker loss
	late     *obs.Counter // completions discarded (lease no longer open)
	leased   *obs.Gauge   // currently inflight leases
}

// leaseManager owns the coordinator's lease table: a FIFO queue of
// open leases, the inflight set with deadlines, and the
// first-write-wins completion rule. It knows nothing about the
// network; connection handlers call pull/complete/dropWorker and a
// janitor calls sweep.
type leaseManager struct {
	mu      sync.Mutex
	nextID  uint64
	queue   []*lease          // open leases awaiting a worker, FIFO
	open    map[uint64]*lease // every lease not yet done, by id
	timeout time.Duration     // inflight deadline
	signal  chan struct{}     // poked on enqueue, wakes one waiting pull
	c       leaseCounters

	// onEvent receives lease lifecycle transitions. Set before the
	// manager is used (never under the lock); events are captured
	// under the lock but delivered after it is released, so the hook
	// may take other locks (fleet state, trace, status subscribers)
	// without ordering against lm.mu.
	onEvent func([]leaseEvent)
}

// emit delivers events to the hook. Callers must NOT hold lm.mu.
func (lm *leaseManager) emit(evs []leaseEvent) {
	if lm.onEvent != nil && len(evs) > 0 {
		lm.onEvent(evs)
	}
}

// event captures one transition for a lease in its current state.
// Callers hold the lock.
func (l *lease) event(kind string, age time.Duration) leaseEvent {
	return leaseEvent{
		kind:     kind,
		id:       l.id,
		campaign: l.campaign,
		worker:   l.worker,
		attempt:  l.attempt,
		seeds:    len(l.seeds),
		age:      age,
	}
}

func newLeaseManager(timeout time.Duration) *leaseManager {
	return &leaseManager{
		open:    make(map[uint64]*lease),
		timeout: timeout,
		signal:  make(chan struct{}, 1),
	}
}

// poke wakes one pull waiter, if any.
func (lm *leaseManager) poke() {
	select {
	case lm.signal <- struct{}{}:
	default:
	}
}

// newBatch registers one fuzz batch: its slots are split into spans of
// at most span seeds, each span becoming one open lease.
func (lm *leaseManager) newBatch(campaign string, spec Spec, space array.Space, batch [][]float64, span int) *pendingBatch {
	pb := &pendingBatch{
		outs:      make([]fuzz.BatchOut, len(batch)),
		remaining: len(batch),
		done:      make(chan struct{}),
	}
	lm.mu.Lock()
	for off := 0; off < len(batch); off += span {
		end := off + span
		if end > len(batch) {
			end = len(batch)
		}
		lm.nextID++
		l := &lease{
			id:       lm.nextID,
			campaign: campaign,
			spec:     spec,
			space:    space,
			seeds:    batch[off:end],
			batch:    pb,
			offset:   off,
		}
		lm.queue = append(lm.queue, l)
		lm.open[l.id] = l
	}
	lm.mu.Unlock()
	lm.poke()
	return pb
}

// tryPull pops the first open queued lease, arming its deadline and
// binding it to the worker. Done leases linger in the queue when a
// first-write-wins completion beat their re-issued copy; they are
// dropped here.
func (lm *leaseManager) tryPull(worker string) *lease {
	lm.mu.Lock()
	var granted leaseEvent
	var picked *lease
	for len(lm.queue) > 0 {
		l := lm.queue[0]
		lm.queue = lm.queue[1:]
		if l.done {
			continue
		}
		now := time.Now()
		l.worker = worker
		l.inflight = true
		l.issuedAt = now
		l.deadline = now.Add(lm.timeout)
		lm.c.issued.Inc()
		lm.c.leased.Add(1)
		if len(lm.queue) > 0 {
			lm.poke() // more work: wake the next waiter too
		}
		granted = l.event(LeaseGranted, 0)
		picked = l
		break
	}
	lm.mu.Unlock()
	if picked != nil {
		lm.emit([]leaseEvent{granted})
	}
	return picked
}

// pullWait is tryPull with a bounded long-poll: it blocks until a
// lease is available, the wait elapses, or ctx is done.
func (lm *leaseManager) pullWait(ctx context.Context, worker string, wait time.Duration) *lease {
	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	for {
		if l := lm.tryPull(worker); l != nil {
			return l
		}
		select {
		case <-lm.signal:
		case <-deadline.C:
			return nil
		case <-ctx.Done():
			return nil
		}
	}
}

// complete records a worker's result for a lease, first write wins:
// the first completion of an open lease fills its batch slots (even
// if the lease had expired and been re-issued in the meantime); any
// later completion — the straggler losing the race — is discarded and
// counted. worker names the completer for lifecycle attribution (it
// may differ from the lease's current holder after a re-issue). It
// reports whether the result was accepted.
func (lm *leaseManager) complete(id uint64, outs []fuzz.BatchOut, worker string) bool {
	lm.mu.Lock()
	l, ok := lm.open[id]
	if !ok || l.done || len(outs) != len(l.seeds) {
		lm.c.late.Inc()
		var ev leaseEvent
		if ok {
			ev = l.event(LeaseLate, 0)
			ev.worker = worker
		} else {
			ev = leaseEvent{kind: LeaseLate, id: id, worker: worker}
		}
		lm.mu.Unlock()
		lm.emit([]leaseEvent{ev})
		return false
	}
	age := time.Since(l.issuedAt)
	lm.finish(l)
	copy(l.batch.outs[l.offset:], outs)
	l.batch.remaining -= len(outs)
	if l.batch.remaining == 0 && !l.batch.closed {
		l.batch.closed = true
		close(l.batch.done)
	}
	ev := l.event(LeaseCompleted, age)
	ev.worker = worker
	lm.mu.Unlock()
	lm.emit([]leaseEvent{ev})
	return true
}

// finish retires a lease under the lock: done, out of the open table,
// inflight gauge adjusted.
func (lm *leaseManager) finish(l *lease) {
	l.done = true
	if l.inflight {
		l.inflight = false
		lm.c.leased.Add(-1)
	}
	delete(lm.open, l.id)
}

// requeue re-issues an open inflight lease: back to the front of the
// queue (stragglers retry promptly) with the attempt count bumped.
// Callers hold the lock.
func (lm *leaseManager) requeue(l *lease) {
	l.inflight = false
	l.worker = ""
	l.attempt++
	lm.c.leased.Add(-1)
	lm.c.reissued.Inc()
	lm.queue = append([]*lease{l}, lm.queue...)
}

// sweep re-issues every inflight lease whose deadline has passed —
// the straggler/lost-worker recovery path — and returns how many it
// re-issued.
func (lm *leaseManager) sweep(now time.Time) int {
	lm.mu.Lock()
	n := 0
	var evs []leaseEvent
	for _, l := range lm.open {
		if l.inflight && now.After(l.deadline) {
			lm.c.expired.Inc()
			evs = append(evs, l.event(LeaseExpired, now.Sub(l.issuedAt)))
			lm.requeue(l)
			evs = append(evs, l.event(LeaseReissued, 0))
			n++
		}
	}
	lm.mu.Unlock()
	if n > 0 {
		lm.poke()
	}
	lm.emit(evs)
	return n
}

// dropWorker re-issues every lease inflight with the named worker —
// the worker-death recovery path, faster than waiting for deadlines.
func (lm *leaseManager) dropWorker(worker string) int {
	lm.mu.Lock()
	n := 0
	var evs []leaseEvent
	for _, l := range lm.open {
		if l.inflight && l.worker == worker {
			lm.requeue(l)
			ev := l.event(LeaseReissued, 0)
			ev.worker = worker // requeue cleared the binding
			evs = append(evs, ev)
			n++
		}
	}
	lm.mu.Unlock()
	if n > 0 {
		lm.poke()
	}
	lm.emit(evs)
	return n
}

// cancelBatch retires every open lease of the batch and marks its
// unfilled slots skipped, closing done. Completions that arrive after
// cancellation are discarded as late. Safe to call concurrently with
// completions and after done has closed.
func (lm *leaseManager) cancelBatch(pb *pendingBatch) {
	lm.mu.Lock()
	for _, l := range lm.open {
		if l.batch != pb {
			continue
		}
		lm.finish(l)
		for i := range l.seeds {
			pb.outs[l.offset+i] = fuzz.BatchOut{Skipped: true}
		}
		pb.remaining -= len(l.seeds)
	}
	if !pb.closed {
		pb.closed = true
		close(pb.done)
	}
	lm.mu.Unlock()
}

// lookup returns the open lease by id, for decoding a result against
// its campaign's space before completing it.
func (lm *leaseManager) lookup(id uint64) (*lease, bool) {
	lm.mu.Lock()
	l, ok := lm.open[id]
	lm.mu.Unlock()
	return l, ok
}

// inflightAges returns, per worker key, the ages of that worker's
// inflight leases — the fleet layer's straggler detector compares
// them against the p95 of completed lease durations.
func (lm *leaseManager) inflightAges(now time.Time) map[string][]time.Duration {
	lm.mu.Lock()
	out := make(map[string][]time.Duration)
	for _, l := range lm.open {
		if l.inflight {
			out[l.worker] = append(out[l.worker], now.Sub(l.issuedAt))
		}
	}
	lm.mu.Unlock()
	return out
}

// inflightFor counts the leases currently inflight with one worker.
func (lm *leaseManager) inflightFor(worker string) int {
	lm.mu.Lock()
	n := 0
	for _, l := range lm.open {
		if l.inflight && l.worker == worker {
			n++
		}
	}
	lm.mu.Unlock()
	return n
}

// queued returns the number of open leases awaiting a worker.
func (lm *leaseManager) queued() int {
	lm.mu.Lock()
	n := 0
	for _, l := range lm.queue {
		if !l.done {
			n++
		}
	}
	lm.mu.Unlock()
	return n
}
