package orchestra

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"

	"repro/internal/fuzz"
)

// Digest hashes every schedule-determined field of a campaign result
// into a stable hex string: the covered index set (as maximal runs),
// the evaluated seeds in order with their verdicts, the coverage
// curve, the counters, and the stop reason. Two campaigns with equal
// digests made the same decisions and observed the same data —
// the bit-identity oracle the distributed determinism tests, `make
// orchestra-demo`, and the orchestra benchmark all assert with.
//
// Wall-clock fields (Elapsed, EvalWall), worker counts, and queue
// high-water marks are deliberately excluded: they vary run to run
// without affecting what the campaign computed.
func Digest(res *fuzz.Result) string {
	h := sha256.New()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	i64 := func(v int64) { u64(uint64(v)) }
	f64 := func(v float64) { u64(math.Float64bits(v)) }

	if res.Indices != nil {
		res.Indices.EachRun(func(lo, hi int64) bool {
			i64(lo)
			i64(hi)
			return true
		})
	}
	i64(int64(len(res.Seeds)))
	for _, s := range res.Seeds {
		for _, v := range s.V {
			f64(v)
		}
		if s.Useful {
			u64(1)
		} else {
			u64(0)
		}
	}
	i64(int64(len(res.Curve)))
	for _, c := range res.Curve {
		i64(int64(c))
	}
	i64(int64(res.Iterations))
	i64(int64(res.Evaluations))
	i64(int64(res.DedupSkips))
	i64(int64(res.Useful))
	i64(int64(res.NonUseful))
	i64(int64(res.UsefulClusters))
	i64(int64(res.NonUsefulClusters))
	i64(int64(len(res.Failures)))
	h.Write([]byte(res.StopReason))
	return hex.EncodeToString(h.Sum(nil))
}
