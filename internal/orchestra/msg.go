// Package orchestra is Kondo's distributed campaign orchestrator: a
// coordinator that owns one or more fuzz campaigns' seed schedules
// and drains them into leased seed batches, plus remote evaluator
// workers that pull leases over a CRC32-framed binary protocol, run
// the debloat tests through the ordinary in-process fuzz machinery,
// and stream per-seed results back.
//
// The design leans entirely on the deterministic batch-merge contract
// of internal/fuzz: every schedule decision (batch composition, RNG
// stream) and the sequential seed-order merge stay in the
// coordinator's fuzz.Run loop; workers only evaluate. A remote worker
// returns exactly the per-seed outcomes a local evaluation would, so
// a fixed-seed campaign is bit-identical whether it ran on one
// process, three remote workers, or a fleet where half the workers
// died mid-campaign and their leases were re-issued (see DESIGN.md
// §12 for the full determinism argument and the lease state machine).
package orchestra

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/array"
	"repro/internal/fuzz"
	"repro/internal/obs"
	"repro/internal/wire"
)

// msgCodec frames every protocol message: magic "KDO1", byte-counted
// payload, 16 MiB limit (a lease of tens of thousands of seeds or a
// result carrying a dense index set stays far below it).
var msgCodec = wire.Codec{Magic: "KDO1", UnitSize: 1, MaxCount: 16 << 20}

// Message types. The protocol is a worker-driven request/response
// exchange over one TCP connection: the worker sends hello once, then
// loops pull → (lease | none), result → ack; either side may end with
// bye.
const (
	msgHello  = "hello"  // worker → coord: register
	msgPull   = "pull"   // worker → coord: request a lease (long-poll)
	msgLease  = "lease"  // coord → worker: one leased span of seeds
	msgNone   = "none"   // coord → worker: no work within the poll window
	msgResult = "result" // worker → coord: per-seed outcomes of a lease
	msgAck    = "ack"    // coord → worker: result accepted or discarded
	msgBye    = "bye"    // either: orderly goodbye (drain, shutdown)
)

// Spec identifies the debloat-test evaluator a campaign runs: a
// benchmark program name plus the data-array extents it is sized to.
// The coordinator resolves it to the parameter space Θ it schedules
// over; each worker resolves the same spec to the evaluator it runs
// leases through. Both sides resolving the same spec is what makes a
// leased evaluation interchangeable with a local one.
type Spec struct {
	Program string `json:"program"`
	Dims    []int  `json:"dims,omitempty"`
}

// String renders the spec compactly for logs and cache keys.
func (s Spec) String() string {
	if len(s.Dims) == 0 {
		return s.Program
	}
	return fmt.Sprintf("%s@%v", s.Program, s.Dims)
}

// msg is the protocol envelope. One struct covers all message types;
// unused fields stay at their zero values and are elided from the
// JSON payload inside the frame.
type msg struct {
	Type string `json:"type"`

	// hello / pull
	Name   string `json:"name,omitempty"`
	WaitMS int64  `json:"wait_ms,omitempty"`

	// Clock sample, attached by the worker to pull and result
	// messages (hello carries one too, for symmetry): ClockNS is the
	// worker's monotonic reading in nanoseconds since its session
	// epoch at send time, WallNS its wall clock (unix ns, for the skew
	// metric only), TurnNS how long the worker held the previous
	// coordinator message before sending this one — the coordinator
	// subtracts it from the observed round-trip to estimate the
	// network RTT and, NTP-style, the clock offset at the midpoint.
	// All optional: a zero WallNS means no sample (older peer).
	ClockNS int64 `json:"clock_ns,omitempty"`
	WallNS  int64 `json:"wall_ns,omitempty"`
	TurnNS  int64 `json:"turn_ns,omitempty"`

	// lease (LeaseID/Attempt echoed back on result)
	LeaseID  uint64      `json:"lease_id,omitempty"`
	Attempt  int         `json:"attempt,omitempty"`
	Campaign string      `json:"campaign,omitempty"`
	Spec     Spec        `json:"spec,omitempty"`
	Seeds    [][]float64 `json:"seeds,omitempty"`
	// Trace asks the worker to record the lease's evaluation into a
	// sub-trace and piggyback it on the result.
	Trace bool `json:"trace,omitempty"`

	// result
	Outs []wireOut `json:"outs,omitempty"`
	// Events is the lease's evaluation sub-trace (when the lease asked
	// for one), timestamps relative to the worker's session epoch;
	// EventsOmitted counts events the bound cut. Metrics is a snapshot
	// of the worker's registry for coordinator-side federation. All
	// optional — an old-style result without them is still accepted.
	Events        []obs.WireEvent   `json:"events,omitempty"`
	EventsOmitted int               `json:"events_omitted,omitempty"`
	Metrics       []obs.MetricPoint `json:"metrics,omitempty"`

	// ack
	Accepted bool `json:"accepted,omitempty"`

	// bye
	Reason string `json:"reason,omitempty"`
}

// wireOut is one evaluated seed's outcome on the wire. The observed
// index set travels as its maximal runs of row-major linear
// positions — the same run representation array.IndexSet stores
// natively — so a dense I_v costs a few int64 pairs, not one entry
// per element.
type wireOut struct {
	Runs  [][2]int64 `json:"runs,omitempty"`
	Err   string     `json:"err,omitempty"`
	DurNS int64      `json:"dur_ns,omitempty"`
}

// encodeOuts converts evaluated batch outcomes to wire form.
func encodeOuts(outs []fuzz.BatchOut) []wireOut {
	ws := make([]wireOut, len(outs))
	for i, o := range outs {
		ws[i].DurNS = int64(o.Dur)
		if o.Err != nil {
			ws[i].Err = o.Err.Error()
			continue
		}
		if o.Indices != nil {
			o.Indices.EachRun(func(lo, hi int64) bool {
				ws[i].Runs = append(ws[i].Runs, [2]int64{lo, hi})
				return true
			})
		}
	}
	return ws
}

// decodeOuts reconstructs batch outcomes over the campaign's array
// space. A failing debloat test arrives as an error string and is
// recorded exactly like a local failure (the cause chain does not
// cross the wire); runs outside the space mark the slot failed rather
// than poisoning the campaign's index set.
func decodeOuts(ws []wireOut, space array.Space) []fuzz.BatchOut {
	outs := make([]fuzz.BatchOut, len(ws))
	for i, w := range ws {
		outs[i].Dur = time.Duration(w.DurNS)
		if w.Err != "" {
			outs[i].Err = errors.New(w.Err)
			continue
		}
		set := array.NewIndexSet(space)
		for _, r := range w.Runs {
			if _, err := set.AddRun(r[0], r[1]); err != nil {
				outs[i].Err = fmt.Errorf("orchestra: result run out of space: %w", err)
				break
			}
		}
		if outs[i].Err == nil {
			outs[i].Indices = set
		}
	}
	return outs
}

// writeMsg frames and writes one message.
func writeMsg(w io.Writer, m *msg) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("orchestra: encoding %s: %w", m.Type, err)
	}
	return msgCodec.Write(w, payload)
}

// readMsg reads and decodes one message frame.
func readMsg(r io.Reader) (*msg, error) {
	payload, err := msgCodec.Decode(r, -1)
	if err != nil {
		return nil, err
	}
	var m msg
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, fmt.Errorf("orchestra: decoding message: %w", err)
	}
	return &m, nil
}
