package orchestra

import (
	"bytes"
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/fuzz"
)

// TestMsgIgnoresUnknownFields: a frame from a newer peer carrying
// fields this build does not know must decode cleanly — the JSON
// envelope is the forward-compat seam of the KDO1 protocol.
func TestMsgIgnoresUnknownFields(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte(`{"type":"result","lease_id":7,"outs":[{"runs":[[0,3]]}],` +
		`"hologram":true,"future_blob":{"nested":[1,2,3]},"clock_ns":12}`)
	if err := msgCodec.Write(&buf, payload); err != nil {
		t.Fatal(err)
	}
	m, err := readMsg(&buf)
	if err != nil {
		t.Fatalf("newer-peer frame rejected: %v", err)
	}
	if m.Type != msgResult || m.LeaseID != 7 || len(m.Outs) != 1 || m.ClockNS != 12 {
		t.Fatalf("known fields mangled: %+v", m)
	}
}

// TestMsgTelemetryFieldsOptional: every telemetry field added for
// fleet observability is omitempty, so an old-style message without
// them round-trips to zero values and stays byte-lean.
func TestMsgTelemetryFieldsOptional(t *testing.T) {
	var buf bytes.Buffer
	if err := writeMsg(&buf, &msg{Type: msgResult, LeaseID: 3, Outs: []wireOut{{Runs: [][2]int64{{0, 1}}}}}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, forbidden := range []string{"clock_ns", "wall_ns", "turn_ns", "trace", "events", "metrics"} {
		if bytes.Contains(raw, []byte(`"`+forbidden+`"`)) {
			t.Errorf("zero-valued telemetry field %q serialized", forbidden)
		}
	}
	m, err := readMsg(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if m.WallNS != 0 || m.Trace || m.Events != nil || m.Metrics != nil {
		t.Fatalf("telemetry fields not zero after round-trip: %+v", m)
	}
}

// TestOldWorkerStillAccepted drives the coordinator with a hand-rolled
// pre-telemetry client: hello and result messages without clock
// samples, sub-traces, or metric snapshots. The lease must complete
// and be acked accepted.
func TestOldWorkerStillAccepted(t *testing.T) {
	env := startCoord(t, Config{SpanSeeds: 100})
	pending := env.coord.Submit(Campaign{ID: "compat", Spec: Spec{Program: "test"}, Fuzz: func() fuzz.Config {
		cfg := testFuzzConfig()
		cfg.MaxIter = 8
		cfg.BatchSize = 8
		return cfg
	}()})

	conn, err := net.DialTimeout("tcp", env.addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeMsg(conn, &msg{Type: msgHello, Name: "oldtimer"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if err := writeMsg(conn, &msg{Type: msgPull, WaitMS: 500}); err != nil {
			t.Fatal(err)
		}
		_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		m, err := readMsg(conn)
		if err != nil {
			t.Fatal(err)
		}
		if m.Type == msgNone {
			continue
		}
		if m.Type != msgLease {
			t.Fatalf("unexpected %q", m.Type)
		}
		outs := make([]fuzz.BatchOut, len(m.Seeds))
		for i, seed := range m.Seeds {
			set, err := testEval(seed)
			if err != nil {
				t.Fatal(err)
			}
			outs[i].Indices = set
		}
		// Old-style result: no clock sample, no events, no metrics.
		if err := writeMsg(conn, &msg{Type: msgResult, LeaseID: m.LeaseID, Outs: encodeOuts(outs)}); err != nil {
			t.Fatal(err)
		}
		ack, err := readMsg(conn)
		if err != nil {
			t.Fatal(err)
		}
		if ack.Type != msgAck || !ack.Accepted {
			t.Fatalf("old-style result not accepted: %+v", ack)
		}
		break
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	go func() {
		// Keep serving any remaining leases of the tiny campaign.
		w := Worker{Addr: env.addr, Name: "helper", Resolve: testEvalResolve}
		_ = w.Run(ctx)
	}()
	if _, err := pending.Wait(ctx); err != nil {
		t.Fatalf("campaign with old-style worker failed: %v", err)
	}
}
