package orchestra

import (
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// CoordinatorPID is the coordinator's process lane in the merged
// Chrome trace (obs.LocalPID); workers get 2, 3, ... in hello order.
const CoordinatorPID = obs.LocalPID

// leaseTraceEvents bounds a piggybacked per-lease sub-trace: the
// worker records at most this many events per lease and the result
// message carries at most this many, so telemetry cannot bloat a
// result frame past the codec limit. 2048 covers a per-worker-laned
// pool evaluation of thousands of seeds with room to spare.
const leaseTraceEvents = 2048

// maxLeaseDurations bounds the completed-lease duration reservoir the
// straggler detector draws its p95 from (a ring: oldest overwritten).
const maxLeaseDurations = 1024

// FleetEvent is one lease lifecycle transition as published to
// status consumers (/fleetz/stream) and Config.OnFleetEvent. Worker
// is the display label ("alice" or the remote address), not the
// internal connection key.
type FleetEvent struct {
	Kind     string  `json:"kind"` // granted|completed|expired|reissued|late-discarded
	LeaseID  uint64  `json:"lease_id"`
	Campaign string  `json:"campaign,omitempty"`
	Worker   string  `json:"worker,omitempty"`
	Attempt  int     `json:"attempt,omitempty"`
	Seeds    int     `json:"seeds,omitempty"`
	AgeMS    float64 `json:"age_ms,omitempty"` // completed/expired: lease age
	UnixNS   int64   `json:"unix_ns"`
}

// FleetWorker is one worker's health in a FleetSnapshot.
type FleetWorker struct {
	Worker          string           `json:"worker"`
	PID             int              `json:"pid"`
	Connected       bool             `json:"connected"`
	LastSeen        time.Time        `json:"last_seen"`
	LeasesCompleted int64            `json:"leases_completed"`
	LeasesExpired   int64            `json:"leases_expired"`
	LeasesReissued  int64            `json:"leases_reissued"`
	LateResults     int64            `json:"late_results"`
	LeasesInflight  int              `json:"leases_inflight"`
	Attempts        map[string]int64 `json:"attempt_histogram,omitempty"` // completed leases by attempt
	EvalsTotal      int64            `json:"evals_total"`
	EvalsPerSec     float64          `json:"evals_per_sec"`
	ClockOffsetMS   float64          `json:"clock_offset_ms"`
	ClockRTTMS      float64          `json:"clock_rtt_ms"` // offset error bound is ±rtt/2
	ClockSkewMS     float64          `json:"clock_skew_ms"`
	ClockSamples    int              `json:"clock_samples"`
	MaxLeaseAgeMS   float64          `json:"max_lease_age_ms,omitempty"`
	Straggler       bool             `json:"straggler"`
}

// FleetSnapshot is the /fleetz view: every worker ever seen this
// process, plus the straggler threshold it was judged against.
type FleetSnapshot struct {
	Workers      []FleetWorker `json:"workers"`
	P95LeaseMS   float64       `json:"p95_lease_ms"`
	QueuedLeases int           `json:"queued_leases"`
}

// fleetWorker is the coordinator's mutable record of one worker.
type fleetWorker struct {
	key       string // latest lease-manager connection key
	label     string
	pid       int
	connected bool
	lastSeen  time.Time

	// Clock estimate (min-RTT NTP-style sample; see clockSample).
	offset  time.Duration
	rtt     time.Duration
	skew    time.Duration
	samples int

	// Coordinator-side lease tallies.
	completed int64
	expired   int64
	reissued  int64
	late      int64
	attempts  map[int]int64

	// Federated from the worker's piggybacked metrics snapshot.
	evals       int64
	evalsAt     time.Time
	evalsPerSec float64
}

// fleet is the coordinator's federation state: worker identity (pid
// assignment, connection-key → label), per-worker clock estimates and
// lease tallies, the merged trace, and the per-worker kondo_fleet_*
// instruments. The lease manager's lifecycle hook feeds it; lm.mu is
// never held while f.mu is taken (events are emitted after unlock),
// and f.mu may be held while taking lm.mu (inflight gauges), so the
// lock order is f.mu → lm.mu.
type fleet struct {
	mu        sync.Mutex
	lm        *leaseManager
	reg       *obs.Registry
	tr        *obs.Trace
	epoch     time.Time
	onEvent   func(FleetEvent)
	workers   map[string]*fleetWorker // by display label
	byKey     map[string]string       // connection key → label
	nextPID   int
	durations [maxLeaseDurations]float64 // completed lease seconds, ring
	ndur      int                        // total completed (ring fill = min(ndur, len))
}

func newFleet(lm *leaseManager) *fleet {
	return &fleet{
		lm:      lm,
		epoch:   time.Now(),
		workers: make(map[string]*fleetWorker),
		byKey:   make(map[string]string),
		nextPID: CoordinatorPID + 1,
	}
}

// bindRegistry points the fleet-level instruments at reg.
func (f *fleet) bindRegistry(reg *obs.Registry) {
	f.mu.Lock()
	f.reg = reg
	f.mu.Unlock()
	reg.GaugeFunc("kondo_fleet_workers", func() float64 {
		f.mu.Lock()
		defer f.mu.Unlock()
		n := 0
		for _, fw := range f.workers {
			if fw.connected {
				n++
			}
		}
		return float64(n)
	})
}

// bindTrace adopts tr as the merged fleet trace: the coordinator's
// own lane gets its name and every worker sub-trace re-bases onto
// tr's epoch.
func (f *fleet) bindTrace(tr *obs.Trace) {
	if tr == nil {
		return
	}
	tr.SetProcessName(CoordinatorPID, "coordinator")
	f.mu.Lock()
	f.tr = tr
	f.epoch = tr.Epoch()
	f.mu.Unlock()
}

// tracing reports whether leases should request worker sub-traces.
func (f *fleet) tracing() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tr != nil
}

// hello registers (or re-binds, on reconnect) a worker: key is the
// lease-manager connection key, label the display name. First sight
// of a label assigns its pid and registers its per-worker
// instruments; a reconnect re-points them at the same record.
func (f *fleet) hello(key, label string) {
	f.mu.Lock()
	fw, ok := f.workers[label]
	if !ok {
		fw = &fleetWorker{label: label, pid: f.nextPID, attempts: make(map[int]int64)}
		f.nextPID++
		f.workers[label] = fw
	}
	fw.key = key
	fw.connected = true
	fw.lastSeen = time.Now()
	f.byKey[key] = label
	reg := f.reg
	f.mu.Unlock()
	if !ok {
		f.registerWorkerMetrics(reg, fw)
	}
}

// registerWorkerMetrics exposes one worker's health as per-worker
// labeled instruments. Closures lock f.mu (never reg's: the registry
// evaluates callbacks without holding its mutex).
func (f *fleet) registerWorkerMetrics(reg *obs.Registry, fw *fleetWorker) {
	if reg == nil {
		return
	}
	lbl := obs.L("worker", fw.label)
	get := func(field func(*fleetWorker) float64) func() float64 {
		return func() float64 {
			f.mu.Lock()
			defer f.mu.Unlock()
			return field(fw)
		}
	}
	reg.CounterFunc("kondo_fleet_worker_evals_total", func() int64 {
		f.mu.Lock()
		defer f.mu.Unlock()
		return fw.evals
	}, lbl)
	reg.CounterFunc("kondo_fleet_worker_leases_completed_total", func() int64 {
		f.mu.Lock()
		defer f.mu.Unlock()
		return fw.completed
	}, lbl)
	reg.CounterFunc("kondo_fleet_worker_leases_expired_total", func() int64 {
		f.mu.Lock()
		defer f.mu.Unlock()
		return fw.expired
	}, lbl)
	reg.CounterFunc("kondo_fleet_worker_late_results_total", func() int64 {
		f.mu.Lock()
		defer f.mu.Unlock()
		return fw.late
	}, lbl)
	reg.GaugeFunc("kondo_fleet_worker_evals_per_sec", get(func(w *fleetWorker) float64 {
		return w.evalsPerSec
	}), lbl)
	reg.GaugeFunc("kondo_fleet_worker_clock_skew_seconds", get(func(w *fleetWorker) float64 {
		return w.skew.Seconds()
	}), lbl)
	reg.GaugeFunc("kondo_fleet_worker_leases_inflight", func() float64 {
		f.mu.Lock()
		key := fw.key
		f.mu.Unlock()
		return float64(f.lm.inflightFor(key))
	}, lbl)
}

// disconnected marks the connection's worker as gone.
func (f *fleet) disconnected(key string) {
	f.mu.Lock()
	if label, ok := f.byKey[key]; ok {
		if fw := f.workers[label]; fw != nil && fw.key == key {
			fw.connected = false
			fw.lastSeen = time.Now()
		}
	}
	f.mu.Unlock()
}

// clockSample folds one NTP-style round-trip observation into the
// worker's clock estimate. lastWrite is when the coordinator sent its
// previous message on the connection, now when the worker's message
// arrived; clockNS/wallNS are the worker's clocks at send (ns since
// its session epoch / unix ns) and turnNS how long the worker held
// our message before replying. The network round-trip is then
// (now−lastWrite)−turn; assuming symmetric paths the worker's clocks
// were read at the midpoint now−rtt/2, so
//
//	offset = (midpoint − coordinatorEpoch) − clockNS
//
// maps worker epoch-relative time onto the coordinator's trace
// timeline with error bounded by ±rtt/2. The minimum-RTT sample wins
// (its bound is tightest); wall skew updates every sample.
func (f *fleet) clockSample(key string, lastWrite, now time.Time, clockNS, wallNS, turnNS int64) {
	rtt := now.Sub(lastWrite) - time.Duration(turnNS)
	if rtt < 0 {
		rtt = 0
	}
	mid := now.Add(-rtt / 2)
	f.mu.Lock()
	defer f.mu.Unlock()
	label, ok := f.byKey[key]
	if !ok {
		return
	}
	fw := f.workers[label]
	if fw == nil {
		return
	}
	fw.lastSeen = now
	offset := mid.Sub(f.epoch) - time.Duration(clockNS)
	if fw.samples == 0 || rtt < fw.rtt {
		fw.offset = offset
		fw.rtt = rtt
	}
	fw.skew = time.Duration(wallNS - mid.UnixNano())
	fw.samples++
}

// touch refreshes a worker's liveness on any protocol message.
func (f *fleet) touch(key string) {
	f.mu.Lock()
	if label, ok := f.byKey[key]; ok {
		if fw := f.workers[label]; fw != nil {
			fw.lastSeen = time.Now()
		}
	}
	f.mu.Unlock()
}

// mergeTrace stitches a worker's piggybacked sub-trace into the
// merged fleet trace under the worker's pid, re-based by its current
// clock-offset estimate.
func (f *fleet) mergeTrace(key string, events []obs.WireEvent, omitted int) {
	f.mu.Lock()
	tr := f.tr
	var pid int
	var label string
	var offset time.Duration
	if l, ok := f.byKey[key]; ok {
		if fw := f.workers[l]; fw != nil {
			pid, label, offset = fw.pid, fw.label, fw.offset
		}
	}
	f.mu.Unlock()
	if tr == nil || pid == 0 {
		return
	}
	tr.MergeRemote(pid, "worker:"+label, offset, events)
	if omitted > 0 {
		obs.Log().Debug("worker sub-trace truncated", "worker", label, "omitted", omitted)
	}
}

// metricsUpdate folds a worker's piggybacked registry snapshot into
// its fleet record, deriving evals/s from successive samples.
func (f *fleet) metricsUpdate(key string, points []obs.MetricPoint, now time.Time) {
	if len(points) == 0 {
		return
	}
	var evals int64
	seen := false
	for _, p := range points {
		if p.Name == "kondo_orchestra_worker_evals_total" && len(p.Labels) == 0 {
			evals, seen = int64(p.Value), true
		}
	}
	if !seen {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	label, ok := f.byKey[key]
	if !ok {
		return
	}
	fw := f.workers[label]
	if fw == nil {
		return
	}
	if !fw.evalsAt.IsZero() {
		if dt := now.Sub(fw.evalsAt).Seconds(); dt > 0 && evals >= fw.evals {
			fw.evalsPerSec = float64(evals-fw.evals) / dt
		}
	}
	fw.evals = evals
	fw.evalsAt = now
}

// handleLeaseEvents is the lease manager's lifecycle hook: tally per
// worker, record a coordinator-trace instant on the worker's lane,
// and forward to the status stream. Called with lm.mu released.
func (f *fleet) handleLeaseEvents(evs []leaseEvent) {
	now := time.Now()
	f.mu.Lock()
	out := make([]FleetEvent, 0, len(evs))
	tr := f.tr
	for _, ev := range evs {
		label := f.byKey[ev.worker]
		var pid int
		fw := f.workers[label]
		if fw != nil {
			pid = fw.pid
		}
		switch ev.kind {
		case LeaseCompleted:
			if fw != nil {
				fw.completed++
				fw.attempts[ev.attempt]++
			}
			f.durations[f.ndur%maxLeaseDurations] = ev.age.Seconds()
			f.ndur++
		case LeaseExpired:
			if fw != nil {
				fw.expired++
			}
		case LeaseReissued:
			if fw != nil {
				fw.reissued++
			}
		case LeaseLate:
			if fw != nil {
				fw.late++
			}
		}
		if tr == nil && f.onEvent == nil {
			continue
		}
		fe := FleetEvent{
			Kind:     ev.kind,
			LeaseID:  ev.id,
			Campaign: ev.campaign,
			Worker:   label,
			Attempt:  ev.attempt,
			Seeds:    ev.seeds,
			UnixNS:   now.UnixNano(),
		}
		if ev.age > 0 {
			fe.AgeMS = float64(ev.age) / float64(time.Millisecond)
		}
		if tr != nil {
			args := []obs.Arg{
				obs.A("lease", ev.id),
				obs.A("campaign", ev.campaign),
				obs.A("attempt", ev.attempt),
			}
			if label != "" {
				args = append(args, obs.A("worker", label))
			}
			tr.RecordInstant("orchestra.lease_"+ev.kind, pid, args...)
		}
		out = append(out, fe)
	}
	onEvent := f.onEvent
	f.mu.Unlock()
	if onEvent != nil {
		for _, fe := range out {
			onEvent(fe)
		}
	}
}

// p95Locked returns the straggler threshold in seconds (0 until
// enough completions). Callers hold f.mu.
func (f *fleet) p95Locked() float64 {
	n := f.ndur
	if n > maxLeaseDurations {
		n = maxLeaseDurations
	}
	if n < 4 { // too few completions to call anything a straggler
		return 0
	}
	ds := append([]float64(nil), f.durations[:n]...)
	sort.Float64s(ds)
	return ds[(n-1)*95/100]
}

// snapshot builds the /fleetz view.
func (f *fleet) snapshot() FleetSnapshot {
	now := time.Now()
	ages := f.lm.inflightAges(now)
	queued := f.lm.queued()

	f.mu.Lock()
	defer f.mu.Unlock()
	p95 := f.p95Locked()
	snap := FleetSnapshot{
		P95LeaseMS:   p95 * 1000,
		QueuedLeases: queued,
		Workers:      make([]FleetWorker, 0, len(f.workers)),
	}
	for _, fw := range f.workers {
		w := FleetWorker{
			Worker:          fw.label,
			PID:             fw.pid,
			Connected:       fw.connected,
			LastSeen:        fw.lastSeen,
			LeasesCompleted: fw.completed,
			LeasesExpired:   fw.expired,
			LeasesReissued:  fw.reissued,
			LateResults:     fw.late,
			LeasesInflight:  len(ages[fw.key]),
			EvalsTotal:      fw.evals,
			EvalsPerSec:     fw.evalsPerSec,
			ClockOffsetMS:   float64(fw.offset) / float64(time.Millisecond),
			ClockRTTMS:      float64(fw.rtt) / float64(time.Millisecond),
			ClockSkewMS:     float64(fw.skew) / float64(time.Millisecond),
			ClockSamples:    fw.samples,
		}
		if len(fw.attempts) > 0 {
			w.Attempts = make(map[string]int64, len(fw.attempts))
			for a, n := range fw.attempts {
				w.Attempts[strconv.Itoa(a)] = n
			}
		}
		for _, age := range ages[fw.key] {
			if s := age.Seconds(); s*1000 > w.MaxLeaseAgeMS {
				w.MaxLeaseAgeMS = s * 1000
			}
		}
		if p95 > 0 && w.MaxLeaseAgeMS > p95*1000 {
			w.Straggler = true
		}
		snap.Workers = append(snap.Workers, w)
	}
	sort.Slice(snap.Workers, func(i, j int) bool { return snap.Workers[i].PID < snap.Workers[j].PID })
	return snap
}
