package orchestra

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/array"
	"repro/internal/fuzz"
	"repro/internal/obs"
	"repro/internal/workload"
)

// Defaults for the coordinator's timing knobs.
const (
	// DefaultLeaseTimeout is how long a leased span may stay inflight
	// before the straggler janitor re-issues it.
	DefaultLeaseTimeout = 30 * time.Second
	// DefaultWorkerWait is how long a batch tolerates having zero
	// connected workers before the campaign fails with a clear error
	// instead of hanging.
	DefaultWorkerWait = 30 * time.Second
	// DefaultPullWait caps how long the coordinator holds a worker's
	// long-poll pull before answering "none".
	DefaultPullWait = 2 * time.Second
)

// Config tunes a Coordinator.
type Config struct {
	// LeaseTimeout bounds how long one leased span may stay inflight
	// before it is re-issued to another worker. Zero means
	// DefaultLeaseTimeout.
	LeaseTimeout time.Duration
	// WorkerWait bounds how long a batch waits with zero connected
	// workers before its campaign fails. Zero means DefaultWorkerWait.
	WorkerWait time.Duration
	// SpanSeeds fixes the seeds-per-lease granularity. Zero splits
	// each batch evenly across the workers connected when the batch is
	// formed (at least one lease), so every live worker gets a span.
	// The split never affects campaign results, only scheduling.
	SpanSeeds int
	// MaxConcurrent is how many queued campaigns run at once. Zero
	// means 1.
	MaxConcurrent int
	// PullWait caps the long-poll hold per pull. Zero means
	// DefaultPullWait.
	PullWait time.Duration
	// Resolve maps a campaign spec to the parameter space Θ the
	// schedule draws from and the array space results range over. Nil
	// means the workload-program resolver (ParamsForSpec).
	Resolve func(Spec) (workload.ParamSpace, array.Space, error)
	// Registry receives the kondo_orchestra_* instruments. Nil falls
	// back to the registry in the context given to Serve (which may
	// also be nil: metrics become no-ops).
	Registry *obs.Registry
	// OnFleetEvent receives lease lifecycle events (granted,
	// completed, expired, reissued, late-discarded) as they happen —
	// cmd/kondo-coord forwards them to the status server's
	// /fleetz/stream. Called from protocol goroutines; must not block.
	OnFleetEvent func(FleetEvent)
}

// Campaign is one unit of the coordinator's queue: a spec naming the
// evaluator fleet-side, and the full fuzz configuration (seed,
// budgets, batch size — Runner is overwritten with the coordinator's
// remote runner).
type Campaign struct {
	// ID names the campaign in leases, logs, and metrics. Must be
	// unique among concurrently running campaigns.
	ID string
	// Spec resolves to Θ on the coordinator and to the evaluator on
	// every worker.
	Spec Spec
	// Fuzz is the campaign's schedule configuration.
	Fuzz fuzz.Config
}

// Pending is a submitted campaign's handle.
type Pending struct {
	// Campaign echoes the submission.
	Campaign Campaign
	res      *fuzz.Result
	err      error
	done     chan struct{}
}

// Wait blocks until the campaign finishes (or ctx is done) and
// returns its result.
func (p *Pending) Wait(ctx context.Context) (*fuzz.Result, error) {
	select {
	case <-p.done:
		return p.res, p.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Coordinator owns the seed schedules of its campaigns and drains
// them into leased seed batches for remote evaluator workers. It
// performs the sequential seed-order merge exactly as an in-process
// campaign does — fuzz.Run runs here, with a BatchRunner that leases
// instead of evaluating — so a fixed-seed distributed campaign is
// bit-identical to a single-process run.
type Coordinator struct {
	cfg   Config
	lm    *leaseManager
	fleet *fleet

	mu         sync.Mutex
	conns      map[net.Conn]struct{}
	nworkers   int
	workerSeen time.Time // last connect/disconnect transition

	queue chan *Pending

	m struct {
		merged       *obs.Counter
		campaigns    *obs.Counter
		active       *obs.Gauge
		workers      *obs.Gauge
		queueDepth   *obs.Gauge
		batchSeconds *obs.Histogram
	}
}

// NewCoordinator returns a coordinator with the given configuration.
// Call Serve to accept workers and drain the campaign queue.
func NewCoordinator(cfg Config) *Coordinator {
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = DefaultLeaseTimeout
	}
	if cfg.WorkerWait <= 0 {
		cfg.WorkerWait = DefaultWorkerWait
	}
	if cfg.PullWait <= 0 {
		cfg.PullWait = DefaultPullWait
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 1
	}
	if cfg.Resolve == nil {
		cfg.Resolve = ParamsForSpec
	}
	c := &Coordinator{
		cfg:        cfg,
		lm:         newLeaseManager(cfg.LeaseTimeout),
		conns:      make(map[net.Conn]struct{}),
		workerSeen: time.Now(),
		queue:      make(chan *Pending, 1024),
	}
	c.fleet = newFleet(c.lm)
	c.fleet.onEvent = cfg.OnFleetEvent
	c.lm.onEvent = c.fleet.handleLeaseEvents
	c.setRegistry(cfg.Registry)
	return c
}

// FleetSnapshot reports every worker's health — last-seen, lease
// tallies, attempt histogram, clock estimate, straggler flag — the
// backing for the status server's /fleetz view.
func (c *Coordinator) FleetSnapshot() FleetSnapshot {
	return c.fleet.snapshot()
}

// setRegistry resolves the coordinator's instruments. Nil-safe: with
// no registry every instrument is a no-op. Serve may rebind from its
// context while Submit runs on another goroutine, so the handle swap
// happens under c.mu (Submit reads its gauge the same way).
func (c *Coordinator) setRegistry(reg *obs.Registry) {
	c.mu.Lock()
	c.lm.c = leaseCounters{
		issued:   reg.Counter("kondo_orchestra_leases_issued_total"),
		expired:  reg.Counter("kondo_orchestra_leases_expired_total"),
		reissued: reg.Counter("kondo_orchestra_leases_reissued_total"),
		late:     reg.Counter("kondo_orchestra_late_results_total"),
		leased:   reg.Gauge("kondo_orchestra_leases_inflight"),
	}
	c.m.merged = reg.Counter("kondo_orchestra_batches_merged_total")
	c.m.campaigns = reg.Counter("kondo_orchestra_campaigns_total")
	c.m.active = reg.Gauge("kondo_orchestra_campaigns_active")
	c.m.workers = reg.Gauge("kondo_orchestra_workers")
	c.m.queueDepth = reg.Gauge("kondo_orchestra_queue_depth")
	c.m.batchSeconds = reg.Histogram("kondo_orchestra_batch_seconds",
		[]float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30})
	c.mu.Unlock()
	if reg != nil {
		c.fleet.bindRegistry(reg)
	}
}

// Submit enqueues a campaign and returns its handle. Campaigns run in
// submission order, MaxConcurrent at a time, once Serve is running.
func (c *Coordinator) Submit(camp Campaign) *Pending {
	p := &Pending{Campaign: camp, done: make(chan struct{})}
	c.queue <- p
	c.mu.Lock()
	qd := c.m.queueDepth
	c.mu.Unlock()
	qd.Set(float64(len(c.queue)))
	return p
}

// Serve accepts evaluator workers on ln and drains the campaign queue
// until ctx is done, then closes every worker connection and returns.
// Lease timeouts are enforced by a janitor for the lifetime of the
// call. If Config.Registry is nil, instruments bind to the registry
// in ctx.
func (c *Coordinator) Serve(ctx context.Context, ln net.Listener) error {
	if c.cfg.Registry == nil {
		if reg := obs.RegistryOf(ctx); reg != nil {
			c.setRegistry(reg)
		}
	}
	// A trace on the Serve context becomes the merged fleet trace:
	// leases ask workers for sub-traces and results stitch them in.
	c.fleet.bindTrace(obs.TraceOf(ctx))
	var wg sync.WaitGroup

	// Straggler janitor: expired leases go back to the queue.
	sweepEvery := c.cfg.LeaseTimeout / 4
	if sweepEvery < 5*time.Millisecond {
		sweepEvery = 5 * time.Millisecond
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(sweepEvery)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case now := <-t.C:
				c.lm.sweep(now)
			}
		}
	}()

	// Campaign dispatchers.
	for i := 0; i < c.cfg.MaxConcurrent; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-ctx.Done():
					return
				case p := <-c.queue:
					c.m.queueDepth.Set(float64(len(c.queue)))
					p.res, p.err = c.RunCampaign(ctx, p.Campaign)
					close(p.done)
				}
			}
		}()
	}

	// Accept loop.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed on shutdown
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				c.handleConn(ctx, conn)
			}()
		}
	}()

	<-ctx.Done()
	ln.Close()
	c.mu.Lock()
	for conn := range c.conns {
		conn.Close()
	}
	c.mu.Unlock()
	wg.Wait()
	return ctx.Err()
}

// workerCount returns the number of connected workers.
func (c *Coordinator) workerCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nworkers
}

// workerTransition returns the time of the last connect/disconnect.
func (c *Coordinator) workerTransition() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.workerSeen
}

// handleConn speaks the lease protocol with one worker: hello, then a
// pull/result loop. Any read/decode error (including an abrupt
// connection drop — worker death) immediately re-issues the worker's
// inflight leases.
func (c *Coordinator) handleConn(ctx context.Context, conn net.Conn) {
	defer conn.Close()
	worker := conn.RemoteAddr().String()
	log := obs.Log()
	registered := false
	unregister := func() {
		if !registered {
			return
		}
		registered = false
		c.mu.Lock()
		delete(c.conns, conn)
		c.nworkers--
		c.workerSeen = time.Now()
		c.mu.Unlock()
		c.m.workers.Add(-1)
		c.fleet.disconnected(worker)
		if n := c.lm.dropWorker(worker); n > 0 {
			log.Info("worker lost, leases re-issued", "worker", worker, "leases", n)
		}
	}
	defer unregister()

	// The idle deadline bounds how long a silent connection may hold
	// coordinator state; workers poll well inside it.
	idle := 4*c.cfg.PullWait + time.Minute

	// lastWrite is when we last sent the worker anything: each
	// worker message carrying a clock sample then closes one
	// round-trip, feeding the NTP-style offset estimate.
	var lastWrite time.Time
	sample := func(m *msg, now time.Time) {
		if m.WallNS == 0 || lastWrite.IsZero() {
			return // no sample attached (older worker) or no round-trip yet
		}
		c.fleet.clockSample(worker, lastWrite, now, m.ClockNS, m.WallNS, m.TurnNS)
	}

	for {
		if ctx.Err() != nil {
			_ = writeMsg(conn, &msg{Type: msgBye, Reason: "coordinator draining"})
			return
		}
		_ = conn.SetReadDeadline(time.Now().Add(idle))
		m, err := readMsg(conn)
		if err != nil {
			return
		}
		now := time.Now()
		switch m.Type {
		case msgHello:
			if m.Name != "" {
				worker = fmt.Sprintf("%s (%s)", m.Name, conn.RemoteAddr())
			}
			if !registered {
				registered = true
				c.mu.Lock()
				c.conns[conn] = struct{}{}
				c.nworkers++
				c.workerSeen = time.Now()
				c.mu.Unlock()
				c.m.workers.Add(1)
				label := m.Name
				if label == "" {
					label = conn.RemoteAddr().String()
				}
				c.fleet.hello(worker, label)
				log.Info("worker connected", "worker", worker)
			}

		case msgPull:
			sample(m, now)
			c.fleet.touch(worker)
			wait := time.Duration(m.WaitMS) * time.Millisecond
			if wait <= 0 || wait > c.cfg.PullWait {
				wait = c.cfg.PullWait
			}
			l := c.lm.pullWait(ctx, worker, wait)
			if l == nil {
				if err := writeMsg(conn, &msg{Type: msgNone}); err != nil {
					return
				}
				lastWrite = time.Now()
				continue
			}
			out := &msg{
				Type:     msgLease,
				LeaseID:  l.id,
				Attempt:  l.attempt,
				Campaign: l.campaign,
				Spec:     l.spec,
				Seeds:    l.seeds,
				Trace:    c.fleet.tracing(),
			}
			if err := writeMsg(conn, out); err != nil {
				// The lease never reached the worker; put it back now
				// rather than waiting out its deadline.
				c.lm.dropWorker(worker)
				return
			}
			lastWrite = time.Now()

		case msgResult:
			sample(m, now)
			c.fleet.touch(worker)
			accepted := false
			if l, ok := c.lm.lookup(m.LeaseID); ok {
				outs := decodeOuts(m.Outs, l.space)
				accepted = c.lm.complete(m.LeaseID, outs, worker)
			} else {
				accepted = c.lm.complete(m.LeaseID, nil, worker)
			}
			// Stitch the piggybacked telemetry whether or not the
			// result won the first-write race — the evaluation
			// happened, so its spans belong in the fleet trace. All of
			// this is off the merge path: outs above are already
			// decoded, so telemetry can never perturb the campaign.
			if len(m.Events) > 0 {
				c.fleet.mergeTrace(worker, m.Events, m.EventsOmitted)
			}
			c.fleet.metricsUpdate(worker, m.Metrics, now)
			if err := writeMsg(conn, &msg{Type: msgAck, Accepted: accepted}); err != nil {
				return
			}
			lastWrite = time.Now()

		case msgBye:
			return

		default:
			log.Warn("unknown message type", "type", m.Type, "worker", worker)
			return
		}
	}
}

// RunCampaign executes one campaign's fuzz schedule on the
// coordinator, evaluating every batch through leased spans. The
// returned result is bit-identical to what fuzz.Run with a local
// evaluator would produce for the same configuration.
func (c *Coordinator) RunCampaign(ctx context.Context, camp Campaign) (*fuzz.Result, error) {
	params, space, err := c.cfg.Resolve(camp.Spec)
	if err != nil {
		return nil, fmt.Errorf("orchestra: campaign %s: resolving spec %s: %w", camp.ID, camp.Spec, err)
	}
	cfg := camp.Fuzz
	cfg.Runner = &remoteRunner{c: c, camp: camp, space: space}
	f, err := fuzz.New(params, space, nil, cfg)
	if err != nil {
		return nil, fmt.Errorf("orchestra: campaign %s: %w", camp.ID, err)
	}
	c.m.campaigns.Inc()
	c.m.active.Add(1)
	defer c.m.active.Add(-1)
	sp := obs.Start(ctx, "orchestra.campaign")
	if sp != nil {
		sp.Arg("campaign", camp.ID).Arg("spec", camp.Spec.String())
	}
	defer sp.End()
	return f.Run(ctx)
}

// remoteRunner is the fuzz.BatchRunner that turns batches into leased
// spans. All determinism-relevant state stays in fuzz.Run; the runner
// only moves per-seed outcomes.
type remoteRunner struct {
	c     *Coordinator
	camp  Campaign
	space array.Space
}

// RunBatch leases the batch out span by span and blocks until every
// slot is filled, the context is canceled (slots come back Skipped
// and the campaign stops as canceled), or the coordinator has had no
// connected workers for WorkerWait (a clear error instead of a hang).
func (r *remoteRunner) RunBatch(ctx context.Context, batch [][]float64) ([]fuzz.BatchOut, error) {
	c := r.c
	span := c.cfg.SpanSeeds
	if span <= 0 {
		// Split evenly across the currently connected workers so every
		// live worker gets a span; the split affects scheduling only,
		// never results.
		workers := c.workerCount()
		if workers < 1 {
			workers = 1
		}
		span = (len(batch) + workers - 1) / workers
	}
	start := time.Now()
	pb := c.lm.newBatch(r.camp.ID, r.camp.Spec, r.space, batch, span)

	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-pb.done:
			c.m.batchSeconds.Observe(time.Since(start).Seconds())
			c.m.merged.Inc()
			return pb.outs, nil
		case <-ctx.Done():
			c.lm.cancelBatch(pb)
			return pb.outs, nil
		case <-tick.C:
			if c.workerCount() > 0 {
				continue
			}
			idle := time.Since(start)
			if since := time.Since(c.workerTransition()); since < idle {
				idle = since
			}
			if idle >= c.cfg.WorkerWait {
				c.lm.cancelBatch(pb)
				return nil, fmt.Errorf("orchestra: campaign %s: no connected workers for %v (start workers or raise WorkerWait)",
					r.camp.ID, c.cfg.WorkerWait)
			}
		}
	}
}

// ParamsForSpec is the default coordinator-side spec resolver: the
// named benchmark program's parameter space and array space, sized to
// the spec's dims when given.
func ParamsForSpec(s Spec) (workload.ParamSpace, array.Space, error) {
	p, err := programForSpec(s)
	if err != nil {
		return nil, array.Space{}, err
	}
	return p.Params(), p.Space(), nil
}

// EvaluatorForSpec is the default worker-side spec resolver: the
// named benchmark program's virtual debloat test — exactly the
// evaluator fuzz.ForProgram would run locally.
func EvaluatorForSpec(s Spec) (fuzz.Evaluator, error) {
	p, err := programForSpec(s)
	if err != nil {
		return nil, err
	}
	return func(v []float64) (*array.IndexSet, error) {
		return workload.RunOnVirtual(p, v)
	}, nil
}

func programForSpec(s Spec) (workload.Program, error) {
	if len(s.Dims) > 0 {
		return workload.ForSpace(s.Program, s.Dims)
	}
	return workload.ByName(s.Program)
}
