package orchestra

import (
	"context"
	"encoding/json"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// startCoordOn is startCoord with a caller-supplied base context, so
// tests can hand the coordinator a trace and registry via Serve's ctx
// exactly as cmd/kondo-coord does.
func startCoordOn(t *testing.T, base context.Context, cfg Config) *coordEnv {
	t.Helper()
	if cfg.Resolve == nil {
		cfg.Resolve = testResolve
	}
	if cfg.LeaseTimeout == 0 {
		cfg.LeaseTimeout = 5 * time.Second
	}
	if cfg.WorkerWait == 0 {
		cfg.WorkerWait = 10 * time.Second
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(cfg)
	ctx, cancel := context.WithCancel(base)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = coord.Serve(ctx, ln)
	}()
	env := &coordEnv{coord: coord, addr: ln.Addr().String()}
	env.stop = func() {
		cancel()
		<-done
	}
	t.Cleanup(env.stop)
	return env
}

// startWorkerOn is startWorker with a caller-supplied base context.
func startWorkerOn(t *testing.T, base context.Context, addr string, w Worker) {
	t.Helper()
	w.Addr = addr
	if w.Resolve == nil {
		w.Resolve = testEvalResolve
	}
	ctx, cancel := context.WithCancel(base)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = w.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
}

// TestFleetTelemetryDoesNotPerturbDigest pins the hard constraint of
// the fleet-observability layer: the campaign digest is bit-identical
// with full telemetry (merged trace, metrics federation, lifecycle
// events) and with none.
func TestFleetTelemetryDoesNotPerturbDigest(t *testing.T) {
	ref := localBaseline(t, 1)

	// Plain distributed run: no trace, no registry, no event hook.
	plain := startCoord(t, Config{SpanSeeds: 7})
	startWorker(t, plain.addr, Worker{Name: "plain", Workers: 2})
	resPlain, err := plain.coord.Submit(Campaign{ID: "c-plain", Spec: Spec{Program: "test"}, Fuzz: testFuzzConfig()}).
		Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Telemetry-laden run: coordinator trace + registry on the Serve
	// context, worker trace + registry, lifecycle events collected.
	coordTrace := obs.NewTrace()
	coordReg := obs.NewRegistry()
	var evMu sync.Mutex
	var events []FleetEvent
	base := obs.WithRegistry(obs.WithTrace(context.Background(), coordTrace), coordReg)
	env := startCoordOn(t, base, Config{
		SpanSeeds: 7,
		OnFleetEvent: func(ev FleetEvent) {
			evMu.Lock()
			events = append(events, ev)
			evMu.Unlock()
		},
	})
	workerTrace := obs.NewTrace()
	workerReg := obs.NewRegistry()
	wbase := obs.WithTrace(context.Background(), workerTrace)
	startWorkerOn(t, wbase, env.addr, Worker{Name: "alice", Workers: 2, Registry: workerReg})
	resTele, err := env.coord.Submit(Campaign{ID: "c-tele", Spec: Spec{Program: "test"}, Fuzz: testFuzzConfig()}).
		Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if d := Digest(ref); Digest(resPlain) != d || Digest(resTele) != d {
		t.Fatalf("telemetry perturbed the campaign digest:\nlocal %s\nplain %s\ntele  %s",
			d, Digest(resPlain), Digest(resTele))
	}
	assertSameResult(t, "telemetry", ref, resTele)

	// The merged trace must hold the coordinator's lane and the
	// worker's, both named, with worker spans re-based onto the
	// coordinator epoch.
	var sb strings.Builder
	if err := coordTrace.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			TS   float64        `json:"ts"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatal(err)
	}
	pids := map[int]bool{}
	names := map[string]bool{}
	workerSpans := 0
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" {
			names[e.Args["name"].(string)] = true
			continue
		}
		pids[e.PID] = true
		if e.PID != CoordinatorPID && e.Name == "orchestra.lease" {
			workerSpans++
			if e.TS < 0 {
				t.Errorf("worker span at ts %v µs is before the coordinator epoch", e.TS)
			}
		}
	}
	if len(pids) < 2 {
		t.Fatalf("merged trace has %d distinct pids, want >= 2", len(pids))
	}
	if !names["coordinator"] || !names["worker:alice"] {
		t.Errorf("process names = %v, want coordinator and worker:alice", names)
	}
	if workerSpans == 0 {
		t.Error("no worker lease spans stitched into the fleet trace")
	}

	// The worker's own trace kept its copies of the shipped spans.
	if workerTrace.Len() == 0 {
		t.Error("worker local trace is empty despite -trace-out-style context")
	}

	// Lifecycle events flowed: every completed lease was granted.
	evMu.Lock()
	kinds := map[string]int{}
	for _, ev := range events {
		kinds[ev.Kind]++
		if ev.Kind == LeaseCompleted && ev.Worker != "alice" {
			t.Errorf("completed event attributes worker %q, want alice", ev.Worker)
		}
	}
	evMu.Unlock()
	if kinds[LeaseGranted] == 0 || kinds[LeaseCompleted] == 0 {
		t.Errorf("lifecycle events missing: %v", kinds)
	}
	if kinds[LeaseCompleted] > kinds[LeaseGranted] {
		t.Errorf("more completions (%d) than grants (%d)", kinds[LeaseCompleted], kinds[LeaseGranted])
	}

	// The fleet snapshot and federated metrics saw the worker.
	snap := env.coord.FleetSnapshot()
	if len(snap.Workers) != 1 || snap.Workers[0].Worker != "alice" {
		t.Fatalf("fleet snapshot = %+v, want one worker alice", snap.Workers)
	}
	w := snap.Workers[0]
	if w.PID == CoordinatorPID || w.PID == 0 {
		t.Errorf("worker pid = %d, want a distinct non-coordinator pid", w.PID)
	}
	if w.LeasesCompleted == 0 || w.EvalsTotal == 0 {
		t.Errorf("worker tallies empty: %+v", w)
	}
	if len(w.Attempts) == 0 {
		t.Errorf("attempt histogram empty: %+v", w)
	}
	if w.ClockSamples == 0 {
		t.Error("no clock samples folded into the worker's estimate")
	}

	var prom strings.Builder
	if err := coordReg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"kondo_fleet_workers 1",
		`kondo_fleet_worker_evals_total{worker="alice"}`,
		`kondo_fleet_worker_leases_completed_total{worker="alice"}`,
		`kondo_fleet_worker_clock_skew_seconds{worker="alice"}`,
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("federated exposition missing %q", want)
		}
	}
}

// TestFleetClockSampleOffset checks the NTP-style arithmetic: a
// worker whose epoch-relative clock reads n ns at the round-trip
// midpoint gets offset = (midpoint − coordinatorEpoch) − n.
func TestFleetClockSampleOffset(t *testing.T) {
	lm := newLeaseManager(time.Hour)
	f := newFleet(lm)
	f.hello("alice (1.2.3.4:5)", "alice")

	// Round trip: coordinator wrote at T, reply arrived 10ms later, of
	// which the worker held it 4ms → rtt 6ms, midpoint T+7ms. The
	// worker's session clock read 2ms there, so offset should be
	// (T+7ms − epoch) − 2ms.
	lastWrite := f.epoch.Add(100 * time.Millisecond)
	now := lastWrite.Add(10 * time.Millisecond)
	f.clockSample("alice (1.2.3.4:5)", lastWrite, now,
		int64(2*time.Millisecond), now.UnixNano(), int64(4*time.Millisecond))

	f.mu.Lock()
	fw := f.workers["alice"]
	offset, rtt, samples := fw.offset, fw.rtt, fw.samples
	f.mu.Unlock()
	if samples != 1 {
		t.Fatalf("samples = %d, want 1", samples)
	}
	if rtt != 6*time.Millisecond {
		t.Errorf("rtt = %v, want 6ms", rtt)
	}
	want := 107*time.Millisecond - 2*time.Millisecond
	if offset != want {
		t.Errorf("offset = %v, want %v", offset, want)
	}

	// A later, fatter sample must not displace the min-RTT estimate.
	f.clockSample("alice (1.2.3.4:5)", lastWrite, lastWrite.Add(50*time.Millisecond),
		int64(30*time.Millisecond), now.UnixNano(), 0)
	f.mu.Lock()
	if f.workers["alice"].rtt != 6*time.Millisecond {
		t.Errorf("min-RTT sample displaced: rtt = %v", f.workers["alice"].rtt)
	}
	if f.workers["alice"].samples != 2 {
		t.Errorf("samples = %d, want 2", f.workers["alice"].samples)
	}
	f.mu.Unlock()
}

// TestFleetStragglerFlag: a worker holding a lease far past the p95
// of completed durations is flagged.
func TestFleetStragglerFlag(t *testing.T) {
	lm := newLeaseManager(time.Hour)
	f := newFleet(lm)
	lm.onEvent = f.handleLeaseEvents
	f.hello("slow (a:1)", "slow")

	// Feed enough short completions to arm the p95 (each ~1ms).
	for i := 0; i < 8; i++ {
		evs := []leaseEvent{{kind: LeaseCompleted, id: uint64(i), worker: "slow (a:1)", age: time.Millisecond}}
		f.handleLeaseEvents(evs)
	}
	// One lease has been inflight with the worker for much longer.
	lm.newBatch("c", Spec{Program: "test"}, testSpace, [][]float64{{1, 1}}, 1)
	l := lm.tryPull("slow (a:1)")
	if l == nil {
		t.Fatal("no lease")
	}
	lm.mu.Lock()
	l.issuedAt = time.Now().Add(-time.Second)
	lm.mu.Unlock()

	snap := f.snapshot()
	if len(snap.Workers) != 1 {
		t.Fatalf("workers = %+v", snap.Workers)
	}
	if !snap.Workers[0].Straggler {
		t.Errorf("straggler not flagged: %+v (p95 %v ms)", snap.Workers[0], snap.P95LeaseMS)
	}
	if snap.Workers[0].LeasesInflight != 1 {
		t.Errorf("inflight = %d, want 1", snap.Workers[0].LeasesInflight)
	}
}
