package orchestra

import (
	"context"
	"errors"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/array"
	"repro/internal/fuzz"
	"repro/internal/obs"
	"repro/internal/workload"
)

// The test fixture: a synthetic debloat test over a 48×48 array whose
// useful region is a centered square, with a small cross-shaped I_v
// per useful seed. Rich enough that campaigns form both cluster kinds
// and the index set accumulates gradually.
var (
	testSpace  = array.MustSpace(48, 48)
	testParams = workload.ParamSpace{{Lo: 0, Hi: 47}, {Lo: 0, Hi: 47}}
)

func testEval(v []float64) (*array.IndexSet, error) {
	set := array.NewIndexSet(testSpace)
	x := int(math.Round(v[0]))
	y := int(math.Round(v[1]))
	if x < 10 || x > 38 || y < 10 || y > 38 {
		return set, nil // not useful
	}
	for d := -2; d <= 2; d++ {
		if _, err := set.Add(array.Index{x + d, y}); err != nil {
			return nil, err
		}
		if _, err := set.Add(array.Index{x, y + d}); err != nil {
			return nil, err
		}
	}
	return set, nil
}

func testResolve(s Spec) (workload.ParamSpace, array.Space, error) {
	if s.Program != "test" {
		return nil, array.Space{}, errors.New("unknown test spec")
	}
	return testParams, testSpace, nil
}

func testEvalResolve(s Spec) (fuzz.Evaluator, error) {
	if s.Program != "test" {
		return nil, errors.New("unknown test spec")
	}
	return testEval, nil
}

func testFuzzConfig() fuzz.Config {
	cfg := fuzz.DefaultConfig()
	cfg.Seed = 42
	cfg.MaxIter = 300
	return cfg
}

// localBaseline runs the campaign in-process, the reference every
// distributed run must match bit for bit.
func localBaseline(t *testing.T, workers int) *fuzz.Result {
	t.Helper()
	cfg := testFuzzConfig()
	cfg.Workers = workers
	f, err := fuzz.New(testParams, testSpace, testEval, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// coordEnv is one running coordinator on a loopback listener.
type coordEnv struct {
	coord *Coordinator
	addr  string
	stop  func()
}

func startCoord(t *testing.T, cfg Config) *coordEnv {
	t.Helper()
	if cfg.Resolve == nil {
		cfg.Resolve = testResolve
	}
	if cfg.LeaseTimeout == 0 {
		cfg.LeaseTimeout = 5 * time.Second
	}
	if cfg.WorkerWait == 0 {
		cfg.WorkerWait = 10 * time.Second
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = coord.Serve(ctx, ln)
	}()
	env := &coordEnv{coord: coord, addr: ln.Addr().String()}
	env.stop = func() {
		cancel()
		<-done
	}
	t.Cleanup(env.stop)
	return env
}

// startWorker runs one evaluator worker against the coordinator until
// the test ends.
func startWorker(t *testing.T, addr string, w Worker) {
	t.Helper()
	w.Addr = addr
	if w.Resolve == nil {
		w.Resolve = testEvalResolve
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = w.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
}

// assertSameResult checks every schedule-determined field two runs
// must share, mirroring fuzz's own determinism oracle, plus the
// digest that folds them all together.
func assertSameResult(t *testing.T, label string, ref, got *fuzz.Result) {
	t.Helper()
	if !ref.Indices.Equal(got.Indices) {
		t.Errorf("%s: Indices differ (%d vs %d elements)", label, ref.Indices.Len(), got.Indices.Len())
	}
	if got.Evaluations != ref.Evaluations || got.Iterations != ref.Iterations {
		t.Errorf("%s: evaluations/iterations %d/%d, want %d/%d",
			label, got.Evaluations, got.Iterations, ref.Evaluations, ref.Iterations)
	}
	if len(got.Seeds) != len(ref.Seeds) {
		t.Fatalf("%s: %d seeds, want %d", label, len(got.Seeds), len(ref.Seeds))
	}
	for i := range ref.Seeds {
		if got.Seeds[i].Useful != ref.Seeds[i].Useful {
			t.Fatalf("%s: seed %d verdict differs", label, i)
		}
		for k := range ref.Seeds[i].V {
			if got.Seeds[i].V[k] != ref.Seeds[i].V[k] {
				t.Fatalf("%s: seed %d value differs", label, i)
			}
		}
	}
	if got.UsefulClusters != ref.UsefulClusters || got.NonUsefulClusters != ref.NonUsefulClusters {
		t.Errorf("%s: clusters %d/%d, want %d/%d", label,
			got.UsefulClusters, got.NonUsefulClusters, ref.UsefulClusters, ref.NonUsefulClusters)
	}
	if got.StopReason != ref.StopReason {
		t.Errorf("%s: stop reason %q, want %q", label, got.StopReason, ref.StopReason)
	}
	if dr, dg := Digest(ref), Digest(got); dr != dg {
		t.Errorf("%s: digest %s, want %s", label, dg, dr)
	}
}

// TestDistributedDeterminism is the PR's tentpole oracle: a fixed-seed
// campaign is bit-identical whether it runs in-process with 4 pool
// workers, on one remote worker, or on three remote workers.
func TestDistributedDeterminism(t *testing.T) {
	ref := localBaseline(t, 4)

	for _, workers := range []int{1, 3} {
		env := startCoord(t, Config{})
		for i := 0; i < workers; i++ {
			startWorker(t, env.addr, Worker{Name: "w", Workers: 2})
		}
		res, err := env.coord.RunCampaign(context.Background(), Campaign{
			ID: "det", Spec: Spec{Program: "test"}, Fuzz: testFuzzConfig(),
		})
		if err != nil {
			t.Fatalf("%d workers: %v", workers, err)
		}
		assertSameResult(t, "workers="+string(rune('0'+workers)), ref, res)
		env.stop()
	}
}

// TestDeterminismAcrossWorkerDeath kills one of three workers
// mid-campaign (via the MaxLeases crash hook, dropping the connection
// without a bye) and requires the campaign to still match the local
// baseline exactly: the dead worker's leases are re-issued and the
// merge is unaffected.
func TestDeterminismAcrossWorkerDeath(t *testing.T) {
	ref := localBaseline(t, 4)

	env := startCoord(t, Config{SpanSeeds: 4})
	startWorker(t, env.addr, Worker{Name: "doomed", MaxLeases: 3})
	startWorker(t, env.addr, Worker{Name: "w1"})
	startWorker(t, env.addr, Worker{Name: "w2"})

	res, err := env.coord.RunCampaign(context.Background(), Campaign{
		ID: "death", Spec: Spec{Program: "test"}, Fuzz: testFuzzConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "worker-death", ref, res)
}

// TestSubmitQueue runs two campaigns through the coordinator queue and
// checks both complete with the expected deterministic results.
func TestSubmitQueue(t *testing.T) {
	env := startCoord(t, Config{MaxConcurrent: 1})
	startWorker(t, env.addr, Worker{Workers: 2})

	cfgA := testFuzzConfig()
	cfgB := testFuzzConfig()
	cfgB.Seed = 7
	pa := env.coord.Submit(Campaign{ID: "a", Spec: Spec{Program: "test"}, Fuzz: cfgA})
	pb := env.coord.Submit(Campaign{ID: "b", Spec: Spec{Program: "test"}, Fuzz: cfgB})

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	ra, err := pa.Wait(ctx)
	if err != nil {
		t.Fatalf("campaign a: %v", err)
	}
	rb, err := pb.Wait(ctx)
	if err != nil {
		t.Fatalf("campaign b: %v", err)
	}
	assertSameResult(t, "queued-campaign", localBaseline(t, 4), ra)
	if Digest(ra) == Digest(rb) {
		t.Error("different seeds produced identical digests")
	}
}

// TestZeroWorkersTimesOut: a campaign with no connected workers must
// fail with a clear error after WorkerWait, not hang.
func TestZeroWorkersTimesOut(t *testing.T) {
	env := startCoord(t, Config{WorkerWait: 200 * time.Millisecond})
	_, err := env.coord.RunCampaign(context.Background(), Campaign{
		ID: "empty", Spec: Spec{Program: "test"}, Fuzz: testFuzzConfig(),
	})
	if err == nil {
		t.Fatal("campaign with zero workers succeeded")
	}
	if !strings.Contains(err.Error(), "no connected workers") {
		t.Errorf("error %q does not name the zero-worker condition", err)
	}
}

// TestCancellationMidLease cancels the campaign context while leases
// are inflight; the campaign must stop as canceled with the partial
// result, and the lease table must drain.
func TestCancellationMidLease(t *testing.T) {
	env := startCoord(t, Config{SpanSeeds: 2})

	// A worker whose evaluator blocks until the test releases it, so
	// cancellation always lands mid-lease.
	release := make(chan struct{})
	var once sync.Once
	started := make(chan struct{})
	slowEval := func(v []float64) (*array.IndexSet, error) {
		once.Do(func() { close(started) })
		<-release
		return testEval(v)
	}
	startWorker(t, env.addr, Worker{Resolve: func(Spec) (fuzz.Evaluator, error) { return slowEval, nil }})
	defer close(release)

	ctx, cancel := context.WithCancel(context.Background())
	resCh := make(chan *fuzz.Result, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := env.coord.RunCampaign(ctx, Campaign{
			ID: "cancel", Spec: Spec{Program: "test"}, Fuzz: testFuzzConfig(),
		})
		resCh <- res
		errCh <- err
	}()

	<-started // at least one lease is inflight
	cancel()

	select {
	case res := <-resCh:
		if err := <-errCh; err != nil {
			t.Fatalf("canceled campaign errored: %v", err)
		}
		if res.StopReason != fuzz.StopCanceled {
			t.Errorf("stop reason %q, want %q", res.StopReason, fuzz.StopCanceled)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled campaign did not return")
	}
	if n := env.coord.lm.queued(); n != 0 {
		t.Errorf("%d leases still queued after cancellation", n)
	}
}

// TestLeaseFirstWriteWins exercises the lease manager directly: an
// expired lease re-issued to a second worker is completed by whoever
// answers first; the straggler's completion is discarded and counted
// as late.
func TestLeaseFirstWriteWins(t *testing.T) {
	reg := obs.NewRegistry()
	lm := newLeaseManager(time.Millisecond)
	lm.c = leaseCounters{
		issued:   reg.Counter("issued"),
		expired:  reg.Counter("expired"),
		reissued: reg.Counter("reissued"),
		late:     reg.Counter("late"),
		leased:   reg.Gauge("leased"),
	}
	batch := [][]float64{{1, 1}, {2, 2}}
	pb := lm.newBatch("c", Spec{Program: "test"}, testSpace, batch, 2)

	l1 := lm.tryPull("w1")
	if l1 == nil {
		t.Fatal("no lease to pull")
	}

	// Deadline passes; the sweep re-issues, and a second worker pulls
	// the same span under a new binding.
	time.Sleep(2 * time.Millisecond)
	if n := lm.sweep(time.Now()); n != 1 {
		t.Fatalf("sweep re-issued %d leases, want 1", n)
	}
	if reg.Counter("expired").Value() != 1 || reg.Counter("reissued").Value() != 1 {
		t.Error("expiry metrics not recorded")
	}
	l2 := lm.tryPull("w2")
	if l2 == nil || l2.id != l1.id {
		t.Fatalf("re-issued lease not pulled (got %+v)", l2)
	}
	if l2.attempt != 1 {
		t.Errorf("re-issued attempt = %d, want 1", l2.attempt)
	}

	outs := make([]fuzz.BatchOut, 2)
	for i := range outs {
		outs[i].Indices = array.NewIndexSet(testSpace)
	}
	if !lm.complete(l2.id, outs, "w2") {
		t.Fatal("first completion rejected")
	}
	// The straggler (w1) answers for the same lease id: late.
	if lm.complete(l1.id, outs, "w1") {
		t.Fatal("second completion of a done lease accepted")
	}
	if reg.Counter("late").Value() != 1 {
		t.Errorf("late counter = %d, want 1", reg.Counter("late").Value())
	}
	select {
	case <-pb.done:
	default:
		t.Error("batch not done after its only lease completed")
	}
}

// TestLeaseDropWorker: dropping a worker re-issues its inflight leases
// immediately, ahead of the queue.
func TestLeaseDropWorker(t *testing.T) {
	lm := newLeaseManager(time.Hour)
	lm.newBatch("c", Spec{Program: "test"}, testSpace, [][]float64{{1, 1}, {2, 2}}, 1)
	a := lm.tryPull("dead")
	if a == nil {
		t.Fatal("no lease")
	}
	if n := lm.dropWorker("dead"); n != 1 {
		t.Fatalf("dropWorker re-issued %d, want 1", n)
	}
	// The re-issued lease jumps ahead of the still-queued second span.
	b := lm.tryPull("alive")
	if b == nil || b.id != a.id {
		t.Fatalf("re-issued lease not first in queue")
	}
}

// TestWireOutsRoundTrip: batch outcomes survive the wire encoding —
// index sets, errors, and durations.
func TestWireOutsRoundTrip(t *testing.T) {
	iv, err := testEval([]float64{24, 24})
	if err != nil {
		t.Fatal(err)
	}
	outs := []fuzz.BatchOut{
		{Indices: iv, Dur: 7 * time.Millisecond},
		{Err: errors.New("debloat test failed"), Dur: time.Millisecond},
		{Indices: array.NewIndexSet(testSpace)}, // not useful: empty set
	}
	back := decodeOuts(encodeOuts(outs), testSpace)
	if len(back) != len(outs) {
		t.Fatalf("%d outs back, want %d", len(back), len(outs))
	}
	if !back[0].Indices.Equal(iv) || back[0].Dur != 7*time.Millisecond {
		t.Error("index-set slot did not round-trip")
	}
	if back[1].Err == nil || back[1].Err.Error() != "debloat test failed" {
		t.Errorf("error slot round-tripped as %v", back[1].Err)
	}
	if back[2].Err != nil || !back[2].Indices.Empty() {
		t.Error("empty-set slot did not round-trip")
	}
}

// TestDecodeOutsRejectsBadRuns: a result carrying runs outside the
// campaign's space fails that slot instead of poisoning the campaign.
func TestDecodeOutsRejectsBadRuns(t *testing.T) {
	n := testSpace.Size()
	back := decodeOuts([]wireOut{{Runs: [][2]int64{{n - 1, n + 5}}}}, testSpace)
	if back[0].Err == nil {
		t.Fatal("out-of-space run decoded without error")
	}
}
