package orchestra

import (
	"context"
	"fmt"
	"net"
	"time"

	"repro/internal/fuzz"
	"repro/internal/obs"
)

// Worker is a remote evaluator: it connects to a coordinator, pulls
// leased seed spans, evaluates them through the ordinary in-process
// pool (fuzz.PoolRunner — the same engine a local campaign uses), and
// streams per-seed results back.
type Worker struct {
	// Addr is the coordinator's TCP address.
	Addr string
	// Name labels the worker in coordinator logs. Empty uses the
	// connection's local address.
	Name string
	// Workers bounds the in-process evaluation pool per lease. Zero
	// means 1 (evaluate the span inline).
	Workers int
	// Resolve maps a lease's spec to the evaluator to run it through.
	// Nil means the workload-program resolver (EvaluatorForSpec).
	Resolve func(Spec) (fuzz.Evaluator, error)
	// PullWait is the long-poll window requested per pull. Zero means
	// DefaultPullWait.
	PullWait time.Duration
	// IdleExit makes Run return nil after this long without receiving
	// a lease. Zero means run until ctx is done or the coordinator
	// says bye.
	IdleExit time.Duration
	// MaxLeases makes the worker crash after completing this many
	// leases: on receiving the next lease it drops the connection
	// without responding or saying bye, leaving the lease inflight for
	// the coordinator to re-issue — a deterministic worker-death hook
	// for fault-injection tests and the re-issue benchmark. Zero means
	// unlimited.
	MaxLeases int
	// Registry receives the kondo_orchestra_worker_* instruments. Nil
	// falls back to the registry in the context given to Run.
	Registry *obs.Registry
}

// Run connects and serves leases until ctx is done, the coordinator
// says bye, or IdleExit/MaxLeases trips. Connection failures are
// retried with backoff for the life of ctx, so a worker may be
// started before its coordinator.
func (w *Worker) Run(ctx context.Context) error {
	resolve := w.Resolve
	if resolve == nil {
		resolve = EvaluatorForSpec
	}
	pullWait := w.PullWait
	if pullWait <= 0 {
		pullWait = DefaultPullWait
	}
	reg := w.Registry
	if reg == nil {
		reg = obs.RegistryOf(ctx)
	}
	mLeases := reg.Counter("kondo_orchestra_worker_leases_total")
	mEvals := reg.Counter("kondo_orchestra_worker_evals_total")
	gConnected := reg.Gauge("kondo_orchestra_worker_connected")
	log := obs.Log()

	// Leases resolve specs through a tiny cache: campaigns reuse one
	// spec for thousands of leases.
	type resolved struct {
		runner *fuzz.PoolRunner
		err    error
	}
	cache := map[string]resolved{}
	runnerFor := func(s Spec) (*fuzz.PoolRunner, error) {
		key := s.String()
		if r, ok := cache[key]; ok {
			return r.runner, r.err
		}
		eval, err := resolve(s)
		r := resolved{err: err}
		if err == nil {
			workers := w.Workers
			if workers <= 0 {
				workers = 1
			}
			r.runner = &fuzz.PoolRunner{Eval: eval, Workers: workers}
		}
		cache[key] = r
		return r.runner, r.err
	}

	// The session epoch anchors every per-lease sub-trace and clock
	// sample this worker ships: one timeline for the whole session, so
	// the coordinator's offset estimate applies to every lease. When
	// the worker has its own trace (-trace-out), its epoch is reused
	// so shipped events align with the local trace too.
	epoch := time.Now()
	if tr := obs.TraceOf(ctx); tr != nil {
		epoch = tr.Epoch()
	}

	served := 0
	lastLease := time.Now()
	backoff := 100 * time.Millisecond
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		conn, err := net.DialTimeout("tcp", w.Addr, 5*time.Second)
		if err != nil {
			if w.IdleExit > 0 && time.Since(lastLease) >= w.IdleExit {
				return nil
			}
			log.Debug("coordinator dial failed, retrying", "addr", w.Addr, "err", err)
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(backoff):
			}
			if backoff < 2*time.Second {
				backoff *= 2
			}
			continue
		}
		backoff = 100 * time.Millisecond
		gConnected.Set(1)
		err = w.serve(ctx, conn, pullWait, epoch, reg, runnerFor, mLeases, mEvals, &served, &lastLease)
		conn.Close()
		gConnected.Set(0)
		switch {
		case ctx.Err() != nil:
			return ctx.Err()
		case err == errByeReceived:
			return nil
		case err == errIdleExit:
			return nil
		case err == errMaxLeases:
			return fmt.Errorf("orchestra: worker crashed mid-lease after completing %d leases (MaxLeases)", served)
		default:
			log.Info("coordinator connection lost, reconnecting", "addr", w.Addr, "err", err)
		}
	}
}

// metricsInterval is the minimum spacing between registry snapshots
// piggybacked on results (the first result always carries one).
const metricsInterval = 250 * time.Millisecond

// Sentinel exits from one connection's serve loop.
var (
	errByeReceived = fmt.Errorf("orchestra: coordinator said bye")
	errIdleExit    = fmt.Errorf("orchestra: idle exit")
	errMaxLeases   = fmt.Errorf("orchestra: max leases reached")
)

// serve runs the pull/result loop on one established connection.
func (w *Worker) serve(ctx context.Context, conn net.Conn, pullWait time.Duration,
	epoch time.Time, reg *obs.Registry,
	runnerFor func(Spec) (*fuzz.PoolRunner, error),
	mLeases, mEvals *obs.Counter, served *int, lastLease *time.Time) error {

	log := obs.Log()

	// lastRecv is when the last coordinator message was read;
	// stamp attaches a clock sample with the turnaround since then,
	// letting the coordinator subtract worker-side processing from its
	// observed round-trip.
	var lastRecv time.Time
	// lastMetrics throttles the registry snapshot piggyback: fleet
	// health tolerates a slightly stale snapshot, and snapshotting on
	// every result would dominate the cost of small leases.
	var lastMetrics time.Time
	stamp := func(m *msg) *msg {
		now := time.Now()
		m.ClockNS = int64(now.Sub(epoch))
		m.WallNS = now.UnixNano()
		if !lastRecv.IsZero() {
			m.TurnNS = int64(now.Sub(lastRecv))
		}
		return m
	}

	if err := writeMsg(conn, stamp(&msg{Type: msgHello, Name: w.Name})); err != nil {
		return err
	}
	for {
		if ctx.Err() != nil {
			_ = writeMsg(conn, &msg{Type: msgBye, Reason: "worker draining"})
			return ctx.Err()
		}
		if w.IdleExit > 0 && time.Since(*lastLease) >= w.IdleExit {
			_ = writeMsg(conn, &msg{Type: msgBye, Reason: "idle"})
			return errIdleExit
		}
		if err := writeMsg(conn, stamp(&msg{Type: msgPull, WaitMS: pullWait.Milliseconds()})); err != nil {
			return err
		}
		_ = conn.SetReadDeadline(time.Now().Add(4*pullWait + time.Minute))
		m, err := readMsg(conn)
		if err != nil {
			return err
		}
		lastRecv = time.Now()
		switch m.Type {
		case msgNone:
			continue

		case msgLease:
			if w.MaxLeases > 0 && *served >= w.MaxLeases {
				// Crash hook: vanish mid-lease, without a result or a
				// bye, so the coordinator must detect the death and
				// re-issue the lease we are holding.
				return errMaxLeases
			}
			*lastLease = time.Now()
			mLeases.Inc()
			runner, rerr := runnerFor(m.Spec)
			res := &msg{Type: msgResult, LeaseID: m.LeaseID}
			if rerr != nil {
				// An unresolvable spec fails every slot of the lease —
				// reported per seed so the coordinator records ordinary
				// debloat-test failures, not a dead campaign.
				outs := make([]fuzz.BatchOut, len(m.Seeds))
				for i := range outs {
					outs[i].Err = fmt.Errorf("orchestra: resolving spec %s: %w", m.Spec, rerr)
				}
				res.Outs = encodeOuts(outs)
			} else {
				// When the coordinator asks, the lease evaluates under
				// a bounded sub-trace on the session epoch, shipped on
				// the result for fleet-trace stitching. Telemetry only
				// observes the evaluation — outs are identical with
				// tracing on or off.
				evalCtx := ctx
				var ltr *obs.Trace
				if m.Trace {
					ltr = obs.NewTraceAt(epoch)
					ltr.SetLimit(leaseTraceEvents)
					evalCtx = obs.WithTrace(ctx, ltr)
				}
				sp := obs.Start(evalCtx, "orchestra.lease")
				if sp != nil {
					sp.Arg("lease", m.LeaseID).Arg("seeds", len(m.Seeds)).Arg("attempt", m.Attempt)
				}
				outs, _ := runner.RunBatch(evalCtx, m.Seeds) // PoolRunner never errors
				sp.End()
				mEvals.Add(int64(len(outs)))
				res.Outs = encodeOuts(outs)
				if ltr != nil {
					events, omitted := ltr.ExportEvents(leaseTraceEvents)
					res.Events = events
					res.EventsOmitted = omitted + int(ltr.Dropped())
					// Keep the worker's own trace whole: the sub-trace
					// shares its epoch, so a straight import aligns.
					obs.TraceOf(ctx).ImportEvents(events)
				}
			}
			if lastMetrics.IsZero() || time.Since(lastMetrics) >= metricsInterval {
				res.Metrics = reg.Snapshot()
				lastMetrics = time.Now()
			}
			if err := writeMsg(conn, stamp(res)); err != nil {
				return err
			}
			_ = conn.SetReadDeadline(time.Now().Add(time.Minute))
			ack, err := readMsg(conn)
			if err != nil {
				return err
			}
			if ack.Type != msgAck {
				return fmt.Errorf("orchestra: expected ack, got %q", ack.Type)
			}
			if !ack.Accepted {
				log.Debug("lease result discarded as late", "lease", m.LeaseID, "attempt", m.Attempt)
			}
			*served++

		case msgBye:
			return errByeReceived

		default:
			return fmt.Errorf("orchestra: unexpected message type %q", m.Type)
		}
	}
}
