// Package hull provides the convex-hull machinery behind Kondo's
// carver (paper §IV-B, Alg. 2): hull construction over d-dimensional
// index points, point-in-hull tests, the center/boundary distance
// measures the CLOSE predicate uses, hull merging, and rasterization
// of hulls back to index sets.
//
// 2D hulls use the monotone chain and exact polygon tests. 3D hulls
// enumerate face planes from extreme vertices. Any dimension (and all
// degenerate configurations) falls back to a small-phase-1 simplex LP
// deciding p ∈ conv(V) exactly in the feasibility sense.
package hull

import (
	"math"

	"repro/internal/geom"
)

// lpEps is the tolerance of the simplex feasibility solver. Index
// coordinates are small integers, so a fixed tolerance suffices.
const lpEps = 1e-7

// InConvexCombination reports whether p can be written as a convex
// combination of the given vertices: ∃λ ≥ 0 with Σλ = 1 and
// Σ λ_i v_i = p. It decides membership in conv(vertices) for any
// dimension and any degenerate vertex configuration.
//
// The implementation is a phase-1 simplex on the standard-form system
// with d+1 equality rows (one per coordinate plus the Σλ = 1 row) and
// one artificial variable per row; feasibility holds iff the artificial
// objective reaches zero.
func InConvexCombination(p geom.Point, vertices []geom.Point) bool {
	if len(vertices) == 0 {
		return false
	}
	d := len(p)
	rows := d + 1
	n := len(vertices)

	// Tableau columns: n λ-variables, rows artificials, then RHS.
	cols := n + rows + 1
	t := make([][]float64, rows+1) // +1 objective row
	for i := range t {
		t[i] = make([]float64, cols)
	}

	// Right-hand side must be non-negative for phase 1; flip rows as
	// needed. Shift coordinates so everything stays well-scaled.
	rhs := make([]float64, rows)
	for i := 0; i < d; i++ {
		rhs[i] = p[i]
	}
	rhs[d] = 1

	for i := 0; i < rows; i++ {
		sign := 1.0
		if rhs[i] < 0 {
			sign = -1
		}
		for j := 0; j < n; j++ {
			var a float64
			if i < d {
				a = vertices[j][i]
			} else {
				a = 1
			}
			t[i][j] = sign * a
		}
		t[i][n+i] = 1 // artificial
		t[i][cols-1] = sign * rhs[i]
	}

	// Objective: minimize sum of artificials. Express as maximizing
	// -Σ artificials; start by pricing out the artificial basis.
	obj := t[rows]
	for j := 0; j < cols; j++ {
		var s float64
		for i := 0; i < rows; i++ {
			s += t[i][j]
		}
		obj[j] = -s
	}
	for i := 0; i < rows; i++ {
		obj[n+i] = 0
	}

	basis := make([]int, rows)
	for i := range basis {
		basis[i] = n + i
	}

	// Simplex iterations with Bland's rule (no cycling).
	for iter := 0; iter < 10000; iter++ {
		// Entering variable: first column with negative reduced cost.
		enter := -1
		for j := 0; j < cols-1; j++ {
			if obj[j] < -lpEps {
				enter = j
				break
			}
		}
		if enter < 0 {
			break // optimal
		}
		// Ratio test.
		leave := -1
		best := math.Inf(1)
		for i := 0; i < rows; i++ {
			if t[i][enter] > lpEps {
				ratio := t[i][cols-1] / t[i][enter]
				if ratio < best-lpEps || (math.Abs(ratio-best) <= lpEps && (leave < 0 || basis[i] < basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			break // unbounded (cannot happen for phase 1); treat as done
		}
		pivot(t, leave, enter)
		basis[leave] = enter
	}

	// Feasible iff the artificial objective value is ~0. The objective
	// row's RHS holds -(sum of artificials in basis).
	return math.Abs(obj[cols-1]) <= 1e-6
}

// pivot performs a full tableau pivot on (row, col), including the
// objective row (the last row of t).
func pivot(t [][]float64, row, col int) {
	pr := t[row]
	pv := pr[col]
	for j := range pr {
		pr[j] /= pv
	}
	for i := range t {
		if i == row {
			continue
		}
		f := t[i][col]
		if f == 0 {
			continue
		}
		for j := range t[i] {
			t[i][j] -= f * pr[j]
		}
	}
}
