package hull

import (
	"sort"

	"repro/internal/geom"
)

// monotoneChain computes the convex hull of 2D points and returns its
// vertices in counter-clockwise order without repetition. Collinear
// boundary points are dropped (only extreme vertices remain).
// Degenerate inputs yield fewer than three vertices: a single point or
// a segment's two endpoints.
func monotoneChain(pts []geom.Point) []geom.Point {
	if len(pts) == 0 {
		return nil
	}
	sorted := make([]geom.Point, len(pts))
	copy(sorted, pts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	// Dedupe.
	uniq := sorted[:1]
	for _, p := range sorted[1:] {
		if !p.Equal(uniq[len(uniq)-1]) {
			uniq = append(uniq, p)
		}
	}
	if len(uniq) == 1 {
		return []geom.Point{uniq[0].Clone()}
	}
	if len(uniq) == 2 {
		return []geom.Point{uniq[0].Clone(), uniq[1].Clone()}
	}

	var lower, upper []geom.Point
	for _, p := range uniq {
		for len(lower) >= 2 && geom.Orient2D(lower[len(lower)-2], lower[len(lower)-1], p) <= 0 {
			lower = lower[:len(lower)-1]
		}
		lower = append(lower, p)
	}
	for i := len(uniq) - 1; i >= 0; i-- {
		p := uniq[i]
		for len(upper) >= 2 && geom.Orient2D(upper[len(upper)-2], upper[len(upper)-1], p) <= 0 {
			upper = upper[:len(upper)-1]
		}
		upper = append(upper, p)
	}
	// Concatenate, dropping the duplicated endpoints.
	hull := append(lower[:len(lower)-1], upper[:len(upper)-1]...)
	out := make([]geom.Point, len(hull))
	for i, p := range hull {
		out[i] = p.Clone()
	}
	if len(out) == 0 {
		// All points collinear: lower/upper collapsed. Return the two
		// extreme points of the sorted order.
		return []geom.Point{uniq[0].Clone(), uniq[len(uniq)-1].Clone()}
	}
	return out
}

// inPolygonCCW reports whether p lies inside or on the convex polygon
// with CCW vertices verts (at least 3).
func inPolygonCCW(p geom.Point, verts []geom.Point) bool {
	n := len(verts)
	for i := 0; i < n; i++ {
		a, b := verts[i], verts[(i+1)%n]
		if geom.Orient2D(a, b, p) < 0 {
			return false
		}
	}
	return true
}
