package hull

import "repro/internal/geom"

// halfspace is one face constraint n·x <= c of a 3D hull.
type halfspace struct {
	n geom.Point
	c float64
}

// faceEps absorbs floating-point noise when classifying points against
// face planes; hull vertices are integer index coordinates.
const faceEps = 1e-7

// facesFromVertices enumerates the supporting face planes of the
// convex hull of 3D extreme vertices by scanning vertex triples: a
// triple's plane is a face iff every vertex lies on one side. It
// returns nil when the vertices are affinely degenerate (rank < 3),
// in which case callers must fall back to the LP membership test.
//
// The O(|V|^4) scan is deliberate: carver hulls keep only extreme
// vertices and stay small (tens of points), and this avoids a full
// incremental-3D-hull implementation with its own degeneracy
// handling.
func facesFromVertices(verts []geom.Point) []halfspace {
	n := len(verts)
	if n < 4 {
		return nil
	}
	var faces []halfspace
	degenerate := true
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for k := j + 1; k < n; k++ {
				normal := geom.Cross3(verts[j].Sub(verts[i]), verts[k].Sub(verts[i]))
				if normal.Norm() <= faceEps {
					continue // collinear triple
				}
				c := normal.Dot(verts[i])
				pos, neg := false, false
				for m := 0; m < n; m++ {
					s := normal.Dot(verts[m]) - c
					if s > faceEps {
						pos = true
					} else if s < -faceEps {
						neg = true
					}
					if pos && neg {
						break
					}
				}
				if pos && neg {
					degenerate = false
					continue // interior-crossing plane, not a face
				}
				// Orient the constraint as n·x <= c.
				hs := halfspace{n: normal, c: c}
				if pos {
					hs.n = normal.Scale(-1)
					hs.c = -c
				}
				if neg || pos {
					degenerate = false
				}
				faces = append(faces, normalizeFace(hs))
			}
		}
	}
	if degenerate {
		// Every triple was collinear or every plane contained all
		// points: rank < 3.
		return nil
	}
	return dedupeFaces(faces)
}

// normalizeFace scales the constraint to unit normal so duplicates
// from different triples of the same face plane compare equal.
func normalizeFace(h halfspace) halfspace {
	norm := h.n.Norm()
	return halfspace{n: h.n.Scale(1 / norm), c: h.c / norm}
}

// dedupeFaces removes near-identical constraints.
func dedupeFaces(faces []halfspace) []halfspace {
	var out []halfspace
	for _, f := range faces {
		dup := false
		for _, g := range out {
			if f.n.ApproxEqual(g.n, 1e-6) && absF(f.c-g.c) <= 1e-6 {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, f)
		}
	}
	return out
}

// inHalfspaces reports whether p satisfies every face constraint.
func inHalfspaces(p geom.Point, faces []halfspace) bool {
	for _, f := range faces {
		if f.n.Dot(p) > f.c+faceEps {
			return false
		}
	}
	return true
}

func absF(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
