package hull

import (
	"math/rand"
	"testing"

	"repro/internal/array"
	"repro/internal/geom"
)

func randomPoints(rng *rand.Rand, n, dim, extent int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dim)
		for k := range p {
			p[k] = float64(rng.Intn(extent))
		}
		pts[i] = p
	}
	return pts
}

// Property: every input point is contained in the hull built from it.
func TestHullContainsInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, dim := range []int{2, 3} {
		for trial := 0; trial < 25; trial++ {
			pts := randomPoints(rng, 3+rng.Intn(15), dim, 20)
			h, err := New(pts)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range pts {
				if !h.Contains(p) {
					t.Fatalf("dim %d trial %d: hull of %v does not contain input %v (verts %v)",
						dim, trial, pts, p, h.Vertices())
				}
			}
		}
	}
}

// Property: hulling a hull's vertices is idempotent (same vertex set).
func TestHullIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, dim := range []int{2, 3} {
		for trial := 0; trial < 20; trial++ {
			pts := randomPoints(rng, 4+rng.Intn(12), dim, 16)
			h1, err := New(pts)
			if err != nil {
				t.Fatal(err)
			}
			h2, err := New(h1.Vertices())
			if err != nil {
				t.Fatal(err)
			}
			if h2.NumVertices() != h1.NumVertices() {
				t.Fatalf("dim %d: re-hull has %d vertices, original %d",
					dim, h2.NumVertices(), h1.NumVertices())
			}
		}
	}
}

// Property: the merged hull contains every point of both hulls, and
// merge is symmetric in coverage.
func TestMergeCoverageProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		a, err := New(randomPoints(rng, 5+rng.Intn(8), 2, 30))
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(randomPoints(rng, 5+rng.Intn(8), 2, 30))
		if err != nil {
			t.Fatal(err)
		}
		ab, err := Merge(a, b)
		if err != nil {
			t.Fatal(err)
		}
		ba, err := Merge(b, a)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range append(append([]geom.Point{}, a.Vertices()...), b.Vertices()...) {
			if !ab.Contains(v) {
				t.Fatalf("merged hull misses vertex %v", v)
			}
			if ab.Contains(v) != ba.Contains(v) {
				t.Fatalf("merge not symmetric at %v", v)
			}
		}
	}
}

// Property: rasterization covers exactly the lattice points the hull
// contains (cross-check Rasterize against Contains).
func TestRasterizeMatchesContains(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	space := array.MustSpace(24, 24)
	for trial := 0; trial < 10; trial++ {
		h, err := New(randomPoints(rng, 6, 2, 24))
		if err != nil {
			t.Fatal(err)
		}
		raster, err := h.Rasterize(space)
		if err != nil {
			t.Fatal(err)
		}
		space.Each(func(ix array.Index) bool {
			p := geom.NewPoint(float64(ix[0]), float64(ix[1]))
			if raster.Contains(ix) != h.Contains(p) {
				t.Fatalf("trial %d: raster/Contains disagree at %v", trial, ix)
			}
			return true
		})
	}
}

// Property: BoundaryDist is symmetric and zero for overlapping vertex
// sets; CenterDist is symmetric.
func TestDistanceProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		a, err := New(randomPoints(rng, 5, 2, 20))
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(randomPoints(rng, 5, 2, 20))
		if err != nil {
			t.Fatal(err)
		}
		if a.BoundaryDist(b) != b.BoundaryDist(a) {
			t.Fatal("BoundaryDist not symmetric")
		}
		if a.CenterDist(b) != b.CenterDist(a) {
			t.Fatal("CenterDist not symmetric")
		}
		if a.CenterDist(a) != 0 || a.BoundaryDist(a) != 0 {
			t.Fatal("self distances not zero")
		}
	}
}

// Property (3D): the hull of a shifted point set contains shifted
// probes iff the original contains the originals (translation
// invariance of membership).
func TestTranslationInvariance3D(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	shift := geom.NewPoint(7, -3, 11)
	for trial := 0; trial < 10; trial++ {
		pts := randomPoints(rng, 8, 3, 12)
		shifted := make([]geom.Point, len(pts))
		for i, p := range pts {
			shifted[i] = p.Add(shift)
		}
		h1, err := New(pts)
		if err != nil {
			t.Fatal(err)
		}
		h2, err := New(shifted)
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 30; probe++ {
			p := geom.NewPoint(float64(rng.Intn(14))-1, float64(rng.Intn(14))-1, float64(rng.Intn(14))-1)
			// Skip points near either hull's boundary where float
			// tolerance could flip the verdict between the two tests.
			if nearVertex(p, h1, 0.51) {
				continue
			}
			if h1.Contains(p) != h2.Contains(p.Add(shift)) {
				t.Fatalf("translation invariance broken at %v", p)
			}
		}
	}
}

func nearVertex(p geom.Point, h *Hull, eps float64) bool {
	for _, v := range h.Vertices() {
		if p.Dist(v) < eps {
			return true
		}
	}
	return false
}
