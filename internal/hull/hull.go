package hull

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/array"
	"repro/internal/geom"
	"repro/internal/obs"
)

// Hull is the convex hull of a set of d-dimensional points, stored as
// its extreme vertices. Hulls are immutable once built; merging
// produces a new hull from the union of vertex sets, which is
// equivalent to hulling the union of the original point sets (paper
// §IV-B).
type Hull struct {
	dim   int
	verts []geom.Point
	bbox  geom.Box
	cent  geom.Point

	// faces is the halfspace description for 3D hulls; nil when the
	// vertices are affinely degenerate (then Contains uses the LP).
	// It is built lazily under facesOnce so concurrent Contains /
	// rasterization calls on a shared hull are race-free.
	facesOnce sync.Once
	faces     []halfspace

	// clip is the lazily built scanline clipper (scanline.go), also
	// guarded for concurrent rasterization.
	clipOnce sync.Once
	clip     *scanClipper
}

// New builds the convex hull of the given points. At least one point
// is required; all points must share a dimension.
func New(points []geom.Point) (*Hull, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("hull: no points")
	}
	dim := points[0].Dim()
	for _, p := range points[1:] {
		if p.Dim() != dim {
			return nil, fmt.Errorf("hull: mixed dimensions %d and %d", dim, p.Dim())
		}
	}
	h := &Hull{dim: dim}
	switch dim {
	case 2:
		h.verts = monotoneChain(points)
	default:
		h.verts = extremeVertices(points)
	}
	h.bbox = geom.BoundingBox(h.verts)
	h.cent = geom.Centroid(h.verts)
	return h, nil
}

// extremeVertices reduces points to (a superset-free approximation of)
// the extreme points of their convex hull using incremental LP
// membership: a point already inside the hull of the kept set is
// dropped, and the kept set is re-pruned at the end so points absorbed
// by later arrivals are removed too.
func extremeVertices(points []geom.Point) []geom.Point {
	// Visit points in a fixed pseudo-random permutation. The
	// incremental reduction is only fast when arrivals are scattered —
	// then the kept set stays near the true extreme set — and degrades
	// catastrophically on sorted lattice input, where nearly every
	// point is extreme for the prefix slab seen so far (a 16³ cell in
	// row-major order keeps thousands of candidates). The constant
	// seed keeps the result a pure function of the input ordering.
	perm := rand.New(rand.NewSource(1)).Perm(len(points))
	kept := make([]geom.Point, 0, 16)
	for _, pi := range perm {
		p := points[pi]
		if len(kept) > 0 && InConvexCombination(p, kept) {
			continue
		}
		kept = append(kept, p.Clone())
	}
	// Final prune: drop any kept vertex inside the hull of the others.
	for i := 0; i < len(kept); {
		others := make([]geom.Point, 0, len(kept)-1)
		others = append(others, kept[:i]...)
		others = append(others, kept[i+1:]...)
		if len(others) > 0 && InConvexCombination(kept[i], others) {
			kept = append(kept[:i], kept[i+1:]...)
			continue
		}
		i++
	}
	return kept
}

// Merge returns the hull of the union of the two hulls' underlying
// point sets, computed from the union of their vertices.
func Merge(a, b *Hull) (*Hull, error) {
	if a.dim != b.dim {
		return nil, fmt.Errorf("hull: merge of %dD and %dD hulls", a.dim, b.dim)
	}
	pts := make([]geom.Point, 0, len(a.verts)+len(b.verts))
	pts = append(pts, a.verts...)
	pts = append(pts, b.verts...)
	return New(pts)
}

// Dim returns the dimension of the hull's ambient space.
func (h *Hull) Dim() int { return h.dim }

// Vertices returns the hull's extreme vertices (CCW order in 2D).
func (h *Hull) Vertices() []geom.Point { return h.verts }

// NumVertices returns the number of extreme vertices.
func (h *Hull) NumVertices() int { return len(h.verts) }

// Centroid returns the centroid of the hull's vertices — the "hull
// center" of the paper's CLOSE predicate.
func (h *Hull) Centroid() geom.Point { return h.cent }

// BBox returns the hull's axis-aligned bounding box.
func (h *Hull) BBox() geom.Box { return h.bbox }

// Contains reports whether p lies inside or on the hull. It is safe
// for concurrent use.
func (h *Hull) Contains(p geom.Point) bool {
	if p.Dim() != h.dim {
		return false
	}
	if !h.bbox.Contains(p) {
		return false
	}
	switch {
	case len(h.verts) == 1:
		return p.ApproxEqual(h.verts[0], geom.Eps)
	case len(h.verts) == 2:
		return geom.SegmentDist2(p, h.verts[0], h.verts[1]) <= geom.Eps
	case h.dim == 2:
		return inPolygonCCW(p, h.verts)
	case h.dim == 3:
		if faces := h.faceCache(); faces != nil {
			return inHalfspaces(p, faces)
		}
		return InConvexCombination(p, h.verts)
	default:
		return InConvexCombination(p, h.verts)
	}
}

// faceCache builds the 3D halfspace description at most once. The
// sync.Once guard makes concurrent first calls (parallel
// rasterization workers sharing a hull) race-free.
func (h *Hull) faceCache() []halfspace {
	h.facesOnce.Do(func() {
		if h.dim == 3 {
			h.faces = facesFromVertices(h.verts)
		}
	})
	return h.faces
}

// CenterDist returns the distance between the two hulls' centers.
func (h *Hull) CenterDist(o *Hull) float64 {
	return h.cent.Dist(o.cent)
}

// BBoxGap returns the distance between the two hulls' bounding boxes.
// Every vertex lies inside its hull's bbox, so this is a lower bound
// on BoundaryDist computable in O(d) instead of O(V²) — the carve
// engine uses it to skip boundary scans that cannot pass the CLOSE
// threshold.
func (h *Hull) BBoxGap(o *Hull) float64 {
	return h.bbox.Gap(o.bbox)
}

// BoundaryDist returns the minimum distance between the two hulls'
// vertex sets — the paper's hull-boundary distance.
func (h *Hull) BoundaryDist(o *Hull) float64 {
	best := math.Inf(1)
	for _, u := range h.verts {
		for _, v := range o.verts {
			if d := u.Dist(v); d < best {
				best = d
			}
		}
	}
	return best
}

// RasterStats counts the work one rasterization performed. All fields
// are deterministic functions of the hulls and the space — per-hull
// counts are independent of worker scheduling, and the totals are
// sums over hulls — so they serve as regression-gate metrics
// (`make bench-check`).
type RasterStats struct {
	// Hulls is the number of hulls rasterized.
	Hulls int64
	// Rows is the number of lattice rows visited (for a scanline hull,
	// one per row of its clipped bbox; the point-by-point fallback
	// counts its rows the same way).
	Rows int64
	// PointTests is the number of exact point-membership tests
	// performed: endpoint refinements on the scanline path, every
	// lattice point on the fallback path. The bbox scan this replaces
	// tested every point of every hull's clipped bbox.
	PointTests int64
	// Runs is the number of index runs emitted into the result set.
	Runs int64
}

// add accumulates o into s.
func (s *RasterStats) add(o RasterStats) {
	s.Hulls += o.Hulls
	s.Rows += o.Rows
	s.PointTests += o.PointTests
	s.Runs += o.Runs
}

// Rasterize collects every integer index of the space that lies inside
// the hull. This converts the carver's hull set back into the
// approximated index subset I'_Θ. It cannot be canceled; use
// RasterizeContext when walking large lattices.
func (h *Hull) Rasterize(space array.Space) (*array.IndexSet, error) {
	return h.RasterizeContext(context.Background(), space)
}

// RasterizeContext is Rasterize with cancellation: a canceled context
// stops the lattice walk mid-hull and returns the context's error.
func (h *Hull) RasterizeContext(ctx context.Context, space array.Space) (*array.IndexSet, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	set := array.NewIndexSet(space)
	var st RasterStats
	if err := h.rasterizeInto(ctx, space, set, &st); err != nil {
		return nil, err
	}
	return set, nil
}

// clipToSpace intersects the hull's bbox with the space's lattice,
// returning per-dimension inclusive bounds and ok=false when the hull
// lies entirely outside the space.
func (h *Hull) clipToSpace(space array.Space, lo, hi []int) bool {
	for k := 0; k < h.dim; k++ {
		lo[k] = int(math.Ceil(h.bbox.Min[k] - geom.Eps))
		hi[k] = int(math.Floor(h.bbox.Max[k] + geom.Eps))
		if lo[k] < 0 {
			lo[k] = 0
		}
		if hi[k] > space.Dim(k)-1 {
			hi[k] = space.Dim(k) - 1
		}
		if lo[k] > hi[k] {
			return false
		}
	}
	return true
}

// rasterizeInto adds the hull's covered indices to an existing set
// using scanline rasterization: for each lattice row (all coordinates
// fixed but the innermost) the row's membership interval is clipped
// against the hull's constraint description in O(faces), its
// endpoints are refined with the exact Contains test, and the whole
// run is emitted at once. Hulls without a constraint description
// (1–2 vertices, degenerate 3-D, dimensions other than 2/3) fall back
// to the point-by-point scan. The context is checked periodically so
// a canceled caller stops a large lattice walk mid-hull.
func (h *Hull) rasterizeInto(ctx context.Context, space array.Space, set *array.IndexSet, st *RasterStats) error {
	if space.Rank() != h.dim {
		return fmt.Errorf("hull: rasterize %dD hull over rank-%d space", h.dim, space.Rank())
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	st.Hulls++
	lo := make([]int, h.dim)
	hi := make([]int, h.dim)
	if !h.clipToSpace(space, lo, hi) {
		return nil // hull entirely outside the space
	}
	cl := h.clipper()
	if !cl.ok {
		return h.rasterizePointwise(ctx, space, set, lo, hi, st)
	}

	d := h.dim
	// Row-major strides: the innermost dimension has stride 1, so a
	// row's covered interval is one contiguous linear run.
	strides := make([]int64, d)
	strides[d-1] = 1
	for k := d - 2; k >= 0; k-- {
		strides[k] = strides[k+1] * int64(space.Dim(k+1))
	}
	cur := append([]int(nil), lo[:d-1]...)
	row := make([]float64, d-1)
	probe := make(geom.Point, d)
	rowLo, rowHi := int64(lo[d-1]), int64(hi[d-1])
	for {
		if st.Rows++; st.Rows%256 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		var base int64
		for k := 0; k < d-1; k++ {
			row[k] = float64(cur[k])
			probe[k] = row[k]
			base += int64(cur[k]) * strides[k]
		}
		if rlo, rhi, ok := cl.rowInterval(row, rowLo, rowHi); ok {
			// Refine the conservative interval's endpoints with the
			// exact membership test. The row's true membership set is
			// an interval (scanline.go), so the refined run is
			// bit-identical to testing every lattice point.
			for rlo <= rhi {
				probe[d-1] = float64(rlo)
				st.PointTests++
				if h.Contains(probe) {
					break
				}
				rlo++
			}
			if rlo <= rhi {
				for rhi > rlo {
					probe[d-1] = float64(rhi)
					st.PointTests++
					if h.Contains(probe) {
						break
					}
					rhi--
				}
				if _, err := set.AddRun(base+rlo, base+rhi); err != nil {
					return err
				}
				st.Runs++
			}
		}
		k := d - 2
		for k >= 0 {
			cur[k]++
			if cur[k] <= hi[k] {
				break
			}
			cur[k] = lo[k]
			k--
		}
		if k < 0 {
			return nil
		}
	}
}

// rasterizePointwise is the retained point-by-point reference: it
// tests every lattice point of the clipped bbox against Contains.
// Degenerate hulls use it directly, and RasterizeReference exposes it
// as the oracle the scanline path is property-tested against.
func (h *Hull) rasterizePointwise(ctx context.Context, space array.Space, set *array.IndexSet, lo, hi []int, st *RasterStats) error {
	cur := append([]int(nil), lo...)
	p := make(geom.Point, h.dim)
	ix := make(array.Index, h.dim)
	last := h.dim - 1
	for {
		if cur[last] == lo[last] {
			if st.Rows++; st.Rows%256 == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
		}
		for k := 0; k < h.dim; k++ {
			p[k] = float64(cur[k])
			ix[k] = cur[k]
		}
		st.PointTests++
		if h.Contains(p) {
			if _, err := set.Add(ix); err != nil {
				return err
			}
		}
		k := last
		for k >= 0 {
			cur[k]++
			if cur[k] <= hi[k] {
				break
			}
			cur[k] = lo[k]
			k--
		}
		if k < 0 {
			return nil
		}
	}
}

// RasterizeReference rasterizes hulls with the point-by-point bbox
// scan — the pre-scanline algorithm, kept as the equivalence oracle
// and as the bench baseline for the point-test reduction headline.
func RasterizeReference(ctx context.Context, hulls []*Hull, space array.Space) (*array.IndexSet, RasterStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var st RasterStats
	set := array.NewIndexSet(space)
	lo := make([]int, space.Rank())
	hi := make([]int, space.Rank())
	for _, h := range hulls {
		if space.Rank() != h.dim {
			return nil, st, fmt.Errorf("hull: rasterize %dD hull over rank-%d space", h.dim, space.Rank())
		}
		st.Hulls++
		if !h.clipToSpace(space, lo, hi) {
			continue
		}
		if err := h.rasterizePointwise(ctx, space, set, lo, hi, &st); err != nil {
			return nil, st, err
		}
	}
	return set, st, nil
}

// RasterizeAll rasterizes a set of hulls into one index set (the union
// of their covered indices), sequentially.
func RasterizeAll(hulls []*Hull, space array.Space) (*array.IndexSet, error) {
	return RasterizeAllContext(context.Background(), hulls, space, 1)
}

// RasterizeAllContext is RasterizeAll with bounded parallelism: hulls
// are sharded across up to workers goroutines (0 or negative means one
// per available CPU), each rasterizing into a private index set, and
// the per-worker sets are unioned in worker order. Index-set union is
// commutative, so the result is bit-identical at any worker count. A
// canceled context stops the walk and returns the context's error.
func RasterizeAllContext(ctx context.Context, hulls []*Hull, space array.Space, workers int) (*array.IndexSet, error) {
	set, _, err := RasterizeAllStats(ctx, hulls, space, workers)
	return set, err
}

// RasterizeAllStats is RasterizeAllContext also returning the
// scanline work counters. When the context carries a metrics registry
// the counters are published as kondo_raster_* instruments. On error
// the stats cover the work performed before the stop.
//
// A failing hull (error or cancellation) stops the whole
// rasterization promptly: the shared first-error signal keeps the
// remaining workers from draining the hull list, and an internal
// cancellation aborts their in-flight lattice walks.
func RasterizeAllStats(ctx context.Context, hulls []*Hull, space array.Space, workers int) (*array.IndexSet, RasterStats, error) {
	var st RasterStats
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(hulls) {
		workers = len(hulls)
	}
	if workers <= 1 {
		set := array.NewIndexSet(space)
		for _, h := range hulls {
			if err := h.rasterizeInto(ctx, space, set, &st); err != nil {
				return nil, st, err
			}
		}
		publishRasterStats(ctx, st)
		return set, st, nil
	}
	rctx, stopWorkers := context.WithCancel(ctx)
	defer stopWorkers()
	sets := make([]*array.IndexSet, workers)
	stats := make([]RasterStats, workers)
	errs := make([]error, workers)
	var failed atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			set := array.NewIndexSet(space)
			sets[w] = set
			for {
				i := int(next.Add(1)) - 1
				if i >= len(hulls) || failed.Load() {
					return
				}
				if err := hulls[i].rasterizeInto(rctx, space, set, &stats[w]); err != nil {
					errs[w] = err
					failed.Store(true)
					stopWorkers() // abort the other workers' in-flight walks
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, ws := range stats {
		st.add(ws)
	}
	if err := firstRasterError(ctx, errs); err != nil {
		return nil, st, err
	}
	// Union into the largest per-worker set so the merge re-inserts as
	// few indices as possible. Union is commutative, so the result is
	// still worker-count independent.
	out := sets[0]
	for _, set := range sets[1:] {
		if set.Len() > out.Len() {
			out = set
		}
	}
	for _, set := range sets {
		if set != out {
			out.UnionWith(set)
		}
	}
	publishRasterStats(ctx, st)
	return out, st, nil
}

// firstRasterError picks the error to report: a worker's own failure
// wins over the context cancellations it induced in its peers, and an
// outer-context cancellation is reported as such.
func firstRasterError(ctx context.Context, errs []error) error {
	var ctxErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if ctxErr == nil {
				ctxErr = err
			}
			continue
		}
		return err
	}
	if ctxErr == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return ctxErr
}

// publishRasterStats records the counters in the context's metrics
// registry (a no-op without one).
func publishRasterStats(ctx context.Context, st RasterStats) {
	reg := obs.RegistryOf(ctx)
	reg.Counter("kondo_raster_rows_total").Add(st.Rows)
	reg.Counter("kondo_raster_point_tests_total").Add(st.PointTests)
	reg.Counter("kondo_raster_runs_total").Add(st.Runs)
}
