package hull

import (
	"fmt"
	"math"

	"repro/internal/array"
	"repro/internal/geom"
)

// Hull is the convex hull of a set of d-dimensional points, stored as
// its extreme vertices. Hulls are immutable once built; merging
// produces a new hull from the union of vertex sets, which is
// equivalent to hulling the union of the original point sets (paper
// §IV-B).
type Hull struct {
	dim   int
	verts []geom.Point
	bbox  geom.Box
	cent  geom.Point

	// faces is the halfspace description for 3D hulls; nil when the
	// vertices are affinely degenerate (then Contains uses the LP).
	faces      []halfspace
	facesBuilt bool
}

// New builds the convex hull of the given points. At least one point
// is required; all points must share a dimension.
func New(points []geom.Point) (*Hull, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("hull: no points")
	}
	dim := points[0].Dim()
	for _, p := range points[1:] {
		if p.Dim() != dim {
			return nil, fmt.Errorf("hull: mixed dimensions %d and %d", dim, p.Dim())
		}
	}
	h := &Hull{dim: dim}
	switch dim {
	case 2:
		h.verts = monotoneChain(points)
	default:
		h.verts = extremeVertices(points)
	}
	h.bbox = geom.BoundingBox(h.verts)
	h.cent = geom.Centroid(h.verts)
	return h, nil
}

// extremeVertices reduces points to (a superset-free approximation of)
// the extreme points of their convex hull using incremental LP
// membership: a point already inside the hull of the kept set is
// dropped, and the kept set is re-pruned at the end so points absorbed
// by later arrivals are removed too.
func extremeVertices(points []geom.Point) []geom.Point {
	kept := make([]geom.Point, 0, 16)
	for _, p := range points {
		if len(kept) > 0 && InConvexCombination(p, kept) {
			continue
		}
		kept = append(kept, p.Clone())
	}
	// Final prune: drop any kept vertex inside the hull of the others.
	for i := 0; i < len(kept); {
		others := make([]geom.Point, 0, len(kept)-1)
		others = append(others, kept[:i]...)
		others = append(others, kept[i+1:]...)
		if len(others) > 0 && InConvexCombination(kept[i], others) {
			kept = append(kept[:i], kept[i+1:]...)
			continue
		}
		i++
	}
	return kept
}

// Merge returns the hull of the union of the two hulls' underlying
// point sets, computed from the union of their vertices.
func Merge(a, b *Hull) (*Hull, error) {
	if a.dim != b.dim {
		return nil, fmt.Errorf("hull: merge of %dD and %dD hulls", a.dim, b.dim)
	}
	pts := make([]geom.Point, 0, len(a.verts)+len(b.verts))
	pts = append(pts, a.verts...)
	pts = append(pts, b.verts...)
	return New(pts)
}

// Dim returns the dimension of the hull's ambient space.
func (h *Hull) Dim() int { return h.dim }

// Vertices returns the hull's extreme vertices (CCW order in 2D).
func (h *Hull) Vertices() []geom.Point { return h.verts }

// NumVertices returns the number of extreme vertices.
func (h *Hull) NumVertices() int { return len(h.verts) }

// Centroid returns the centroid of the hull's vertices — the "hull
// center" of the paper's CLOSE predicate.
func (h *Hull) Centroid() geom.Point { return h.cent }

// BBox returns the hull's axis-aligned bounding box.
func (h *Hull) BBox() geom.Box { return h.bbox }

// Contains reports whether p lies inside or on the hull.
func (h *Hull) Contains(p geom.Point) bool {
	if p.Dim() != h.dim {
		return false
	}
	if !h.bbox.Contains(p) {
		return false
	}
	switch {
	case len(h.verts) == 1:
		return p.ApproxEqual(h.verts[0], geom.Eps)
	case len(h.verts) == 2:
		return geom.SegmentDist2(p, h.verts[0], h.verts[1]) <= geom.Eps
	case h.dim == 2:
		return inPolygonCCW(p, h.verts)
	case h.dim == 3:
		if faces := h.faceCache(); faces != nil {
			return inHalfspaces(p, faces)
		}
		return InConvexCombination(p, h.verts)
	default:
		return InConvexCombination(p, h.verts)
	}
}

// faceCache lazily builds the 3D halfspace description.
func (h *Hull) faceCache() []halfspace {
	if !h.facesBuilt {
		h.faces = facesFromVertices(h.verts)
		h.facesBuilt = true
	}
	return h.faces
}

// CenterDist returns the distance between the two hulls' centers.
func (h *Hull) CenterDist(o *Hull) float64 {
	return h.cent.Dist(o.cent)
}

// BoundaryDist returns the minimum distance between the two hulls'
// vertex sets — the paper's hull-boundary distance.
func (h *Hull) BoundaryDist(o *Hull) float64 {
	best := math.Inf(1)
	for _, u := range h.verts {
		for _, v := range o.verts {
			if d := u.Dist(v); d < best {
				best = d
			}
		}
	}
	return best
}

// Rasterize collects every integer index of the space that lies inside
// the hull. This converts the carver's hull set back into the
// approximated index subset I'_Θ.
func (h *Hull) Rasterize(space array.Space) (*array.IndexSet, error) {
	if space.Rank() != h.dim {
		return nil, fmt.Errorf("hull: rasterize %dD hull over rank-%d space", h.dim, space.Rank())
	}
	set := array.NewIndexSet(space)
	if err := h.rasterizeInto(space, set); err != nil {
		return nil, err
	}
	return set, nil
}

// rasterizeInto adds the hull's covered indices to an existing set.
func (h *Hull) rasterizeInto(space array.Space, set *array.IndexSet) error {
	// Iterate only the integer lattice inside bbox ∩ space.
	lo := make([]int, h.dim)
	hi := make([]int, h.dim)
	for k := 0; k < h.dim; k++ {
		lo[k] = int(math.Ceil(h.bbox.Min[k] - geom.Eps))
		hi[k] = int(math.Floor(h.bbox.Max[k] + geom.Eps))
		if lo[k] < 0 {
			lo[k] = 0
		}
		if hi[k] > space.Dim(k)-1 {
			hi[k] = space.Dim(k) - 1
		}
		if lo[k] > hi[k] {
			return nil // hull entirely outside the space
		}
	}
	cur := append([]int(nil), lo...)
	p := make(geom.Point, h.dim)
	ix := make(array.Index, h.dim)
	for {
		for k := 0; k < h.dim; k++ {
			p[k] = float64(cur[k])
			ix[k] = cur[k]
		}
		if h.Contains(p) {
			if _, err := set.Add(ix); err != nil {
				return err
			}
		}
		k := h.dim - 1
		for k >= 0 {
			cur[k]++
			if cur[k] <= hi[k] {
				break
			}
			cur[k] = lo[k]
			k--
		}
		if k < 0 {
			return nil
		}
	}
}

// RasterizeAll rasterizes a set of hulls into one index set (the union
// of their covered indices).
func RasterizeAll(hulls []*Hull, space array.Space) (*array.IndexSet, error) {
	set := array.NewIndexSet(space)
	for _, h := range hulls {
		if err := h.rasterizeInto(space, set); err != nil {
			return nil, err
		}
	}
	return set, nil
}
