package hull

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/array"
	"repro/internal/geom"
)

// Hull is the convex hull of a set of d-dimensional points, stored as
// its extreme vertices. Hulls are immutable once built; merging
// produces a new hull from the union of vertex sets, which is
// equivalent to hulling the union of the original point sets (paper
// §IV-B).
type Hull struct {
	dim   int
	verts []geom.Point
	bbox  geom.Box
	cent  geom.Point

	// faces is the halfspace description for 3D hulls; nil when the
	// vertices are affinely degenerate (then Contains uses the LP).
	faces      []halfspace
	facesBuilt bool
}

// New builds the convex hull of the given points. At least one point
// is required; all points must share a dimension.
func New(points []geom.Point) (*Hull, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("hull: no points")
	}
	dim := points[0].Dim()
	for _, p := range points[1:] {
		if p.Dim() != dim {
			return nil, fmt.Errorf("hull: mixed dimensions %d and %d", dim, p.Dim())
		}
	}
	h := &Hull{dim: dim}
	switch dim {
	case 2:
		h.verts = monotoneChain(points)
	default:
		h.verts = extremeVertices(points)
	}
	h.bbox = geom.BoundingBox(h.verts)
	h.cent = geom.Centroid(h.verts)
	return h, nil
}

// extremeVertices reduces points to (a superset-free approximation of)
// the extreme points of their convex hull using incremental LP
// membership: a point already inside the hull of the kept set is
// dropped, and the kept set is re-pruned at the end so points absorbed
// by later arrivals are removed too.
func extremeVertices(points []geom.Point) []geom.Point {
	// Visit points in a fixed pseudo-random permutation. The
	// incremental reduction is only fast when arrivals are scattered —
	// then the kept set stays near the true extreme set — and degrades
	// catastrophically on sorted lattice input, where nearly every
	// point is extreme for the prefix slab seen so far (a 16³ cell in
	// row-major order keeps thousands of candidates). The constant
	// seed keeps the result a pure function of the input ordering.
	perm := rand.New(rand.NewSource(1)).Perm(len(points))
	kept := make([]geom.Point, 0, 16)
	for _, pi := range perm {
		p := points[pi]
		if len(kept) > 0 && InConvexCombination(p, kept) {
			continue
		}
		kept = append(kept, p.Clone())
	}
	// Final prune: drop any kept vertex inside the hull of the others.
	for i := 0; i < len(kept); {
		others := make([]geom.Point, 0, len(kept)-1)
		others = append(others, kept[:i]...)
		others = append(others, kept[i+1:]...)
		if len(others) > 0 && InConvexCombination(kept[i], others) {
			kept = append(kept[:i], kept[i+1:]...)
			continue
		}
		i++
	}
	return kept
}

// Merge returns the hull of the union of the two hulls' underlying
// point sets, computed from the union of their vertices.
func Merge(a, b *Hull) (*Hull, error) {
	if a.dim != b.dim {
		return nil, fmt.Errorf("hull: merge of %dD and %dD hulls", a.dim, b.dim)
	}
	pts := make([]geom.Point, 0, len(a.verts)+len(b.verts))
	pts = append(pts, a.verts...)
	pts = append(pts, b.verts...)
	return New(pts)
}

// Dim returns the dimension of the hull's ambient space.
func (h *Hull) Dim() int { return h.dim }

// Vertices returns the hull's extreme vertices (CCW order in 2D).
func (h *Hull) Vertices() []geom.Point { return h.verts }

// NumVertices returns the number of extreme vertices.
func (h *Hull) NumVertices() int { return len(h.verts) }

// Centroid returns the centroid of the hull's vertices — the "hull
// center" of the paper's CLOSE predicate.
func (h *Hull) Centroid() geom.Point { return h.cent }

// BBox returns the hull's axis-aligned bounding box.
func (h *Hull) BBox() geom.Box { return h.bbox }

// Contains reports whether p lies inside or on the hull.
func (h *Hull) Contains(p geom.Point) bool {
	if p.Dim() != h.dim {
		return false
	}
	if !h.bbox.Contains(p) {
		return false
	}
	switch {
	case len(h.verts) == 1:
		return p.ApproxEqual(h.verts[0], geom.Eps)
	case len(h.verts) == 2:
		return geom.SegmentDist2(p, h.verts[0], h.verts[1]) <= geom.Eps
	case h.dim == 2:
		return inPolygonCCW(p, h.verts)
	case h.dim == 3:
		if faces := h.faceCache(); faces != nil {
			return inHalfspaces(p, faces)
		}
		return InConvexCombination(p, h.verts)
	default:
		return InConvexCombination(p, h.verts)
	}
}

// faceCache lazily builds the 3D halfspace description.
func (h *Hull) faceCache() []halfspace {
	if !h.facesBuilt {
		h.faces = facesFromVertices(h.verts)
		h.facesBuilt = true
	}
	return h.faces
}

// CenterDist returns the distance between the two hulls' centers.
func (h *Hull) CenterDist(o *Hull) float64 {
	return h.cent.Dist(o.cent)
}

// BBoxGap returns the distance between the two hulls' bounding boxes.
// Every vertex lies inside its hull's bbox, so this is a lower bound
// on BoundaryDist computable in O(d) instead of O(V²) — the carve
// engine uses it to skip boundary scans that cannot pass the CLOSE
// threshold.
func (h *Hull) BBoxGap(o *Hull) float64 {
	return h.bbox.Gap(o.bbox)
}

// BoundaryDist returns the minimum distance between the two hulls'
// vertex sets — the paper's hull-boundary distance.
func (h *Hull) BoundaryDist(o *Hull) float64 {
	best := math.Inf(1)
	for _, u := range h.verts {
		for _, v := range o.verts {
			if d := u.Dist(v); d < best {
				best = d
			}
		}
	}
	return best
}

// Rasterize collects every integer index of the space that lies inside
// the hull. This converts the carver's hull set back into the
// approximated index subset I'_Θ.
func (h *Hull) Rasterize(space array.Space) (*array.IndexSet, error) {
	if space.Rank() != h.dim {
		return nil, fmt.Errorf("hull: rasterize %dD hull over rank-%d space", h.dim, space.Rank())
	}
	set := array.NewIndexSet(space)
	if err := h.rasterizeInto(nil, space, set); err != nil {
		return nil, err
	}
	return set, nil
}

// rasterizeInto adds the hull's covered indices to an existing set.
// A non-nil context is checked periodically so a canceled caller stops
// a large lattice walk mid-hull.
func (h *Hull) rasterizeInto(ctx context.Context, space array.Space, set *array.IndexSet) error {
	// Iterate only the integer lattice inside bbox ∩ space.
	lo := make([]int, h.dim)
	hi := make([]int, h.dim)
	for k := 0; k < h.dim; k++ {
		lo[k] = int(math.Ceil(h.bbox.Min[k] - geom.Eps))
		hi[k] = int(math.Floor(h.bbox.Max[k] + geom.Eps))
		if lo[k] < 0 {
			lo[k] = 0
		}
		if hi[k] > space.Dim(k)-1 {
			hi[k] = space.Dim(k) - 1
		}
		if lo[k] > hi[k] {
			return nil // hull entirely outside the space
		}
	}
	cur := append([]int(nil), lo...)
	p := make(geom.Point, h.dim)
	ix := make(array.Index, h.dim)
	visited := 0
	for {
		if visited++; ctx != nil && visited%4096 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		for k := 0; k < h.dim; k++ {
			p[k] = float64(cur[k])
			ix[k] = cur[k]
		}
		if h.Contains(p) {
			if _, err := set.Add(ix); err != nil {
				return err
			}
		}
		k := h.dim - 1
		for k >= 0 {
			cur[k]++
			if cur[k] <= hi[k] {
				break
			}
			cur[k] = lo[k]
			k--
		}
		if k < 0 {
			return nil
		}
	}
}

// RasterizeAll rasterizes a set of hulls into one index set (the union
// of their covered indices), sequentially.
func RasterizeAll(hulls []*Hull, space array.Space) (*array.IndexSet, error) {
	return RasterizeAllContext(context.Background(), hulls, space, 1)
}

// RasterizeAllContext is RasterizeAll with bounded parallelism: hulls
// are sharded across up to workers goroutines (0 or negative means one
// per available CPU), each rasterizing into a private index set, and
// the per-worker sets are unioned in worker order. Index-set union is
// commutative, so the result is bit-identical at any worker count. A
// canceled context stops the walk and returns the context's error.
func RasterizeAllContext(ctx context.Context, hulls []*Hull, space array.Space, workers int) (*array.IndexSet, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(hulls) {
		workers = len(hulls)
	}
	if workers <= 1 {
		set := array.NewIndexSet(space)
		for _, h := range hulls {
			if err := h.rasterizeInto(ctx, space, set); err != nil {
				return nil, err
			}
		}
		return set, nil
	}
	sets := make([]*array.IndexSet, workers)
	errs := make([]error, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			set := array.NewIndexSet(space)
			sets[w] = set
			for {
				i := int(next.Add(1)) - 1
				if i >= len(hulls) || errs[w] != nil {
					return
				}
				errs[w] = hulls[i].rasterizeInto(ctx, space, set)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Union into the largest per-worker set so the (map-insert-bound)
	// merge re-inserts as few indices as possible. Union is commutative,
	// so the result is still worker-count independent.
	out := sets[0]
	for _, set := range sets[1:] {
		if set.Len() > out.Len() {
			out = set
		}
	}
	for _, set := range sets {
		if set != out {
			out.UnionWith(set)
		}
	}
	return out, nil
}
