package hull

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/array"
	"repro/internal/geom"
)

// fractionalPoints generates points with non-lattice coordinates,
// possibly offset outside the space, to stress the clip slack and the
// out-of-space paths.
func fractionalPoints(rng *rand.Rand, n, dim int, extent, offset float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dim)
		for k := range p {
			p[k] = offset + rng.Float64()*extent
		}
		pts[i] = p
	}
	return pts
}

// rasterCase is one hull population for the equivalence property test.
type rasterCase struct {
	name  string
	hulls []*Hull
	space array.Space
}

func equivalenceCases(t *testing.T, rng *rand.Rand) []rasterCase {
	t.Helper()
	var cases []rasterCase
	for _, dim := range []int{2, 3} {
		dims := make([]int, dim)
		for k := range dims {
			dims[k] = 24
		}
		sp := array.MustSpace(dims...)

		// Random general-position hulls, lattice and fractional coords.
		var latticeHulls, fracHulls []*Hull
		for trial := 0; trial < 6; trial++ {
			latticeHulls = append(latticeHulls, mustHull(t, randomPoints(rng, 3+rng.Intn(12), dim, 24)))
			fracHulls = append(fracHulls, mustHull(t, fractionalPoints(rng, 3+rng.Intn(12), dim, 23, 0)))
		}
		cases = append(cases,
			rasterCase{fmt.Sprintf("%dD/lattice", dim), latticeHulls, sp},
			rasterCase{fmt.Sprintf("%dD/fractional", dim), fracHulls, sp},
		)

		// Degenerate hulls: single vertex, segment, collinear point set.
		seg := randomPoints(rng, 2, dim, 24)
		line := make([]geom.Point, 5)
		for i := range line {
			p := make(geom.Point, dim)
			for k := range p {
				p[k] = float64(2 + 3*i)
			}
			line[i] = p
		}
		cases = append(cases, rasterCase{fmt.Sprintf("%dD/degenerate", dim), []*Hull{
			mustHull(t, randomPoints(rng, 1, dim, 24)),
			mustHull(t, seg),
			mustHull(t, line),
		}, sp})

		// Hulls partially and fully outside the space.
		cases = append(cases, rasterCase{fmt.Sprintf("%dD/outside", dim), []*Hull{
			mustHull(t, fractionalPoints(rng, 6, dim, 20, -10)), // straddles the low boundary
			mustHull(t, fractionalPoints(rng, 6, dim, 20, 14)),  // straddles the high boundary
			mustHull(t, fractionalPoints(rng, 6, dim, 10, 40)),  // fully outside
			mustHull(t, fractionalPoints(rng, 6, dim, 10, -30)), // fully outside (negative)
		}, sp})
	}

	// Coplanar 3-D vertex sets (affinely degenerate: no face description,
	// LP membership, pointwise fallback).
	flat := make([]geom.Point, 7)
	for i := range flat {
		flat[i] = geom.Point{float64(2 + 2*i), float64(20 - 2*i), 7}
	}
	tilted := make([]geom.Point, 6)
	for i := range tilted {
		x, y := float64(3*i), float64(2*i%11)
		tilted[i] = geom.Point{x, y, x + y} // z = x + y plane
	}
	cases = append(cases, rasterCase{"3D/coplanar", []*Hull{
		mustHull(t, flat),
		mustHull(t, tilted),
	}, array.MustSpace(24, 24, 24)})

	return cases
}

// TestScanlineMatchesReference pins the scanline rasterizer
// bit-identical to the retained point-by-point reference across
// random, degenerate, and out-of-space hulls, at several worker
// counts. This is the property that lets the carve pipeline switch
// algorithms without any output drift.
func TestScanlineMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, tc := range equivalenceCases(t, rng) {
		want, refStats, err := RasterizeReference(context.Background(), tc.hulls, tc.space)
		if err != nil {
			t.Fatalf("%s: reference: %v", tc.name, err)
		}
		for _, workers := range []int{1, 4, 8} {
			got, st, err := RasterizeAllStats(context.Background(), tc.hulls, tc.space, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", tc.name, workers, err)
			}
			if !got.Equal(want) {
				t.Fatalf("%s workers=%d: scanline set (%d indices) differs from reference (%d indices)",
					tc.name, workers, got.Len(), want.Len())
			}
			if st.Hulls != refStats.Hulls {
				t.Fatalf("%s workers=%d: hull count %d vs reference %d", tc.name, workers, st.Hulls, refStats.Hulls)
			}
			if st.PointTests > refStats.PointTests {
				t.Errorf("%s workers=%d: scanline performed %d point tests, more than the reference's %d",
					tc.name, workers, st.PointTests, refStats.PointTests)
			}
		}
	}
}

// TestScanlineStatsDeterministic pins that the work counters are a
// pure function of hulls and space, independent of worker count — the
// property the bench regression gate relies on.
func TestScanlineStatsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	sp := array.MustSpace(32, 32)
	var hulls []*Hull
	for i := 0; i < 12; i++ {
		hulls = append(hulls, mustHull(t, fractionalPoints(rng, 5, 2, 31, 0)))
	}
	_, base, err := RasterizeAllStats(context.Background(), hulls, sp, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		_, st, err := RasterizeAllStats(context.Background(), hulls, sp, workers)
		if err != nil {
			t.Fatal(err)
		}
		if st != base {
			t.Fatalf("workers=%d: stats %+v differ from serial %+v", workers, st, base)
		}
	}
}

// TestScanlinePointTestReduction asserts the headline win: on thin
// diagonal strips (the bbox scan's worst case) the scanline path
// performs at least 10x fewer exact point tests than the bbox scan.
func TestScanlinePointTestReduction(t *testing.T) {
	sp := array.MustSpace(192, 192)
	var hulls []*Hull
	for i := 0; i < 8; i++ {
		base := float64(4 + i*6)
		h := mustHull(t, []geom.Point{
			{base, 2}, {base + 4, 2}, {base + 144, 142}, {base + 140, 142},
		})
		hulls = append(hulls, h)
	}
	want, ref, err := RasterizeReference(context.Background(), hulls, sp)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := RasterizeAllStats(context.Background(), hulls, sp, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("scanline output differs from reference on diagonal strips")
	}
	if st.PointTests*10 > ref.PointTests {
		t.Fatalf("point tests %d vs bbox-scan %d: reduction %.1fx < 10x",
			st.PointTests, ref.PointTests, float64(ref.PointTests)/float64(st.PointTests))
	}
}

// TestSharedHullConcurrentRasterize exercises the lazily built face
// and clipper caches from many goroutines sharing one 3-D hull; under
// -race this pins the sync.Once guards (the former lazy build raced).
func TestSharedHullConcurrentRasterize(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	h := mustHull(t, randomPoints(rng, 12, 3, 16))
	sp := array.MustSpace(16, 16, 16)
	want, err := h.Rasterize(sp)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errsC := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := h.RasterizeContext(context.Background(), sp)
			if err != nil {
				errsC <- err
				return
			}
			if !got.Equal(want) {
				errsC <- errors.New("concurrent rasterization diverged")
				return
			}
			// Concurrent Contains shares the same caches.
			if !h.Contains(h.Centroid()) {
				errsC <- errors.New("hull does not contain its centroid")
			}
		}()
	}
	wg.Wait()
	close(errsC)
	for err := range errsC {
		t.Error(err)
	}
}

// TestRasterizeAllStopsAfterError pins the prompt-stop behavior: once
// one worker hits a hard error (a hull whose dimension does not match
// the space), the others must not drain the remaining hull list.
func TestRasterizeAllStopsAfterError(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	sp := array.MustSpace(64, 64)
	bad := mustHull(t, randomPoints(rng, 4, 3, 16)) // 3-D hull over a 2-D space
	good := mustHull(t, fractionalPoints(rng, 5, 2, 63, 0))
	_, perHull, err := RasterizeAllStats(context.Background(), []*Hull{good}, sp, 1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	hulls := []*Hull{bad}
	for i := 0; i < n; i++ {
		hulls = append(hulls, good)
	}
	const workers = 4
	_, st, err := RasterizeAllStats(context.Background(), hulls, sp, workers)
	if err == nil {
		t.Fatal("want error from mismatched hull, got nil")
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("real error masked by induced cancellation: %v", err)
	}
	// Each worker may finish the hull it already started, but no worker
	// may keep pulling new hulls after the failure flag is up. Allow a
	// generous scheduling margin — far below the n-hull full drain.
	if limit := perHull.Rows * workers * 4; st.Rows > limit {
		t.Fatalf("workers drained %d rows after failure (limit %d; full drain would be %d)",
			st.Rows, limit, perHull.Rows*n)
	}
}

// TestRasterizeAllPreCanceled pins that an already-canceled context
// returns promptly without walking any hull.
func TestRasterizeAllPreCanceled(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	sp := array.MustSpace(64, 64)
	var hulls []*Hull
	for i := 0; i < 50; i++ {
		hulls = append(hulls, mustHull(t, fractionalPoints(rng, 5, 2, 63, 0)))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		_, st, err := RasterizeAllStats(ctx, hulls, sp, workers)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: want context.Canceled, got %v", workers, err)
		}
		if st.Rows != 0 {
			t.Fatalf("workers=%d: walked %d rows under a pre-canceled context", workers, st.Rows)
		}
	}
}

// TestRasterizeContextCanceled pins single-hull cancellation: the
// mid-walk context check stops a large lattice scan.
func TestRasterizeContextCanceled(t *testing.T) {
	h := mustHull(t, []geom.Point{{0, 0}, {500, 0}, {500, 500}, {0, 500}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := h.RasterizeContext(ctx, array.MustSpace(501, 501)); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// nil context must behave as Background, not panic.
	if _, err := h.RasterizeContext(nil, array.MustSpace(501, 501)); err != nil { //nolint:staticcheck
		t.Fatalf("nil context: %v", err)
	}
}

// TestRowIntervalZeroAlloc pins that clipping one row allocates
// nothing — the scanline inner loop must stay allocation-free.
func TestRowIntervalZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc counting is skipped in -short (race) runs")
	}
	h := mustHull(t, []geom.Point{{2, 3}, {90, 7}, {95, 88}, {4, 91}})
	cl := h.clipper()
	if !cl.ok {
		t.Fatal("expected a clipper for a 2-D polygon")
	}
	row := []float64{40}
	allocs := testing.AllocsPerRun(200, func() {
		for y := 0.0; y < 64; y++ {
			row[0] = y
			cl.rowInterval(row, 0, 95)
		}
	})
	if allocs != 0 {
		t.Fatalf("rowInterval allocates %.1f per batch, want 0", allocs)
	}
}
