package hull

import "math"

// scanClipper is the per-hull precomputation behind scanline
// rasterization: the hull's interior written as linear constraints
// a·x ≤ b, so one lattice row (all coordinates fixed except the
// innermost) clips to a single [lo, hi] interval in O(constraints)
// instead of one Contains call per lattice point.
//
// 2-D hulls with ≥3 vertices derive one constraint per CCW edge
// (the halfplane form of the Orient2D test); 3-D hulls reuse the
// face halfspaces. Degenerate hulls (1–2 vertices, affinely
// degenerate 3-D vertex sets) and dimensions without a constraint
// description fall back to the point-by-point reference scan.
//
// The clip is deliberately conservative: every bound carries a
// scale-aware slack covering both the membership tests' epsilons and
// the clip arithmetic's own rounding, plus one lattice unit of
// safety, so the clipped interval is a superset of the true covered
// interval. The rasterizer then refines each endpoint inward with
// the exact Contains test; because a row's membership set is an
// interval (each constraint's computed value is monotone in the
// innermost coordinate), the refined run is bit-identical to the
// point-by-point scan.
type scanClipper struct {
	ok   bool
	dim  int
	coef []float64 // constraint coefficients, dim per constraint
	rhs  []float64 // constraint right-hand sides
	// maxAbsT bounds |innermost coordinate| over the hull's bbox; it
	// scales the near-zero-coefficient rejection guard.
	maxAbsT float64
}

// scanSlackEps absorbs the membership epsilons (geom.Eps for the 2-D
// orientation test, faceEps for 3-D halfspaces) with ample headroom.
const scanSlackEps = 1e-6

// scanTinyCoef is the threshold below which a constraint's innermost
// coefficient is treated as row-constant.
const scanTinyCoef = 1e-9

// buildClipper derives the constraint description, or ok=false when
// the hull has no exact halfspace/edge form.
func (h *Hull) buildClipper() *scanClipper {
	c := &scanClipper{dim: h.dim}
	c.maxAbsT = math.Max(math.Abs(h.bbox.Min[h.dim-1]), math.Abs(h.bbox.Max[h.dim-1])) + 1
	switch {
	case h.dim == 2 && len(h.verts) >= 3:
		// Edge (a, b) of the CCW polygon: inside means
		// Orient2D(a, b, p) ≥ 0, i.e. (b1-a1)·p0 - (b0-a0)·p1 ≤
		// (b1-a1)·a0 - (b0-a0)·a1.
		n := len(h.verts)
		c.coef = make([]float64, 0, 2*n)
		c.rhs = make([]float64, 0, n)
		for i := 0; i < n; i++ {
			a, b := h.verts[i], h.verts[(i+1)%n]
			c.coef = append(c.coef, b[1]-a[1], -(b[0]-a[0]))
			c.rhs = append(c.rhs, (b[1]-a[1])*a[0]-(b[0]-a[0])*a[1])
		}
		c.ok = true
	case h.dim == 3:
		faces := h.faceCache()
		if faces == nil {
			return c // affinely degenerate: LP fallback only
		}
		c.coef = make([]float64, 0, 3*len(faces))
		c.rhs = make([]float64, 0, len(faces))
		for _, f := range faces {
			c.coef = append(c.coef, f.n[0], f.n[1], f.n[2])
			c.rhs = append(c.rhs, f.c)
		}
		c.ok = true
	}
	return c
}

// rowInterval clips the lattice row with fixed outer coordinates
// row[0..dim-2] against the constraints, narrowing the candidate
// interval [lo, hi] of the innermost coordinate. It reports ok=false
// when the row is definitely empty. The returned interval
// conservatively over-covers the true membership interval; callers
// refine the endpoints with the exact point test.
func (c *scanClipper) rowInterval(row []float64, lo, hi int64) (int64, int64, bool) {
	d := c.dim
	for ci := range c.rhs {
		base := ci * d
		var fixed float64
		for k := 0; k < d-1; k++ {
			fixed += c.coef[base+k] * row[k]
		}
		a := c.coef[base+d-1]
		// Scale-aware slack: membership epsilons plus the relative
		// rounding of the fixed-part accumulation.
		slack := scanSlackEps + 1e-9*(math.Abs(fixed)+math.Abs(c.rhs[ci]))
		rem := c.rhs[ci] - fixed + slack
		switch {
		case a > scanTinyCoef:
			q := rem / a
			if q < float64(lo)-1 {
				return 0, 0, false
			}
			if q < float64(hi) {
				if b := int64(math.Floor(q)) + 1; b < hi {
					hi = b
				}
			}
		case a < -scanTinyCoef:
			q := rem / a
			if q > float64(hi)+1 {
				return 0, 0, false
			}
			if q > float64(lo) {
				if b := int64(math.Ceil(q)) - 1; b > lo {
					lo = b
				}
			}
		default:
			// Row-constant constraint: the |a·t| contribution is
			// bounded by scanTinyCoef·maxAbsT; reject only when the
			// violation clears that guard too.
			if rem < -scanTinyCoef*c.maxAbsT {
				return 0, 0, false
			}
		}
		if lo > hi {
			return 0, 0, false
		}
	}
	return lo, hi, true
}

// clipper returns the hull's cached scanline clipper, building it at
// most once (safe for concurrent rasterization).
func (h *Hull) clipper() *scanClipper {
	h.clipOnce.Do(func() { h.clip = h.buildClipper() })
	return h.clip
}
