package hull

import (
	"math/rand"
	"testing"

	"repro/internal/array"
	"repro/internal/geom"
)

func pt(coords ...float64) geom.Point { return geom.NewPoint(coords...) }

func TestMonotoneChainSquare(t *testing.T) {
	pts := []geom.Point{
		pt(0, 0), pt(4, 0), pt(4, 4), pt(0, 4),
		pt(2, 2), pt(1, 3), pt(2, 0), // interior + edge points
	}
	verts := monotoneChain(pts)
	if len(verts) != 4 {
		t.Fatalf("hull has %d vertices, want 4: %v", len(verts), verts)
	}
	// All corners present.
	want := map[string]bool{"0,0": true, "4,0": true, "4,4": true, "0,4": true}
	for _, v := range verts {
		delete(want, v.Key())
	}
	if len(want) != 0 {
		t.Errorf("missing corners: %v", want)
	}
	// CCW orientation.
	area := 0.0
	for i := range verts {
		a, b := verts[i], verts[(i+1)%len(verts)]
		area += a[0]*b[1] - b[0]*a[1]
	}
	if area <= 0 {
		t.Errorf("vertices not CCW (signed area %v)", area)
	}
}

func TestMonotoneChainDegenerate(t *testing.T) {
	// Single point.
	if v := monotoneChain([]geom.Point{pt(3, 3), pt(3, 3)}); len(v) != 1 {
		t.Errorf("single point hull = %v", v)
	}
	// Collinear points.
	v := monotoneChain([]geom.Point{pt(0, 0), pt(1, 1), pt(2, 2), pt(3, 3)})
	if len(v) != 2 {
		t.Fatalf("collinear hull = %v", v)
	}
}

func TestHull2DContains(t *testing.T) {
	h, err := New([]geom.Point{pt(0, 0), pt(10, 0), pt(10, 10), pt(0, 10), pt(5, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if h.NumVertices() != 4 {
		t.Errorf("NumVertices = %d", h.NumVertices())
	}
	cases := []struct {
		p    geom.Point
		want bool
	}{
		{pt(5, 5), true},
		{pt(0, 0), true},
		{pt(10, 5), true},
		{pt(10.5, 5), false},
		{pt(-1, 5), false},
		{pt(5, 11), false},
	}
	for _, c := range cases {
		if got := h.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestHullDegenerateContains(t *testing.T) {
	// Point hull.
	h, err := New([]geom.Point{pt(2, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if !h.Contains(pt(2, 3)) || h.Contains(pt(2, 4)) {
		t.Error("point hull membership wrong")
	}
	// Segment hull.
	h, err = New([]geom.Point{pt(0, 0), pt(4, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if !h.Contains(pt(2, 2)) || h.Contains(pt(2, 3)) || h.Contains(pt(5, 5)) {
		t.Error("segment hull membership wrong")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty New should error")
	}
	if _, err := New([]geom.Point{pt(1, 2), pt(1, 2, 3)}); err == nil {
		t.Error("mixed dimensions should error")
	}
}

func TestInConvexCombination2D(t *testing.T) {
	tri := []geom.Point{pt(0, 0), pt(10, 0), pt(0, 10)}
	cases := []struct {
		p    geom.Point
		want bool
	}{
		{pt(1, 1), true},
		{pt(0, 0), true},
		{pt(5, 5), true},  // on hypotenuse
		{pt(6, 5), false}, // just outside
		{pt(-1, 0), false},
	}
	for _, c := range cases {
		if got := InConvexCombination(c.p, tri); got != c.want {
			t.Errorf("InConvexCombination(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if InConvexCombination(pt(0, 0), nil) {
		t.Error("empty vertex set should contain nothing")
	}
}

// TestLPAgreesWithPolygon cross-validates the simplex membership
// oracle against the exact 2D polygon test on random hulls and probe
// points.
func TestLPAgreesWithPolygon(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		var pts []geom.Point
		for i := 0; i < 12; i++ {
			pts = append(pts, pt(float64(rng.Intn(20)), float64(rng.Intn(20))))
		}
		verts := monotoneChain(pts)
		if len(verts) < 3 {
			continue
		}
		for probe := 0; probe < 40; probe++ {
			p := pt(float64(rng.Intn(22))-1, float64(rng.Intn(22))-1)
			// Skip points within Eps of an edge, where the two tests
			// may legitimately disagree on ties.
			onEdge := false
			for i := range verts {
				a, b := verts[i], verts[(i+1)%len(verts)]
				if geom.SegmentDist2(p, a, b) < 1e-6 {
					onEdge = true
					break
				}
			}
			if onEdge {
				continue
			}
			poly := inPolygonCCW(p, verts)
			lp := InConvexCombination(p, verts)
			if poly != lp {
				t.Fatalf("trial %d: point %v polygon=%v lp=%v verts=%v", trial, p, poly, lp, verts)
			}
		}
	}
}

func TestHull3DCube(t *testing.T) {
	var pts []geom.Point
	for x := 0.0; x <= 4; x += 4 {
		for y := 0.0; y <= 4; y += 4 {
			for z := 0.0; z <= 4; z += 4 {
				pts = append(pts, pt(x, y, z))
			}
		}
	}
	pts = append(pts, pt(2, 2, 2), pt(1, 1, 1)) // interior
	h, err := New(pts)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumVertices() != 8 {
		t.Errorf("cube hull has %d vertices, want 8", h.NumVertices())
	}
	if !h.Contains(pt(2, 2, 2)) || !h.Contains(pt(0, 0, 0)) || !h.Contains(pt(4, 4, 2)) {
		t.Error("cube membership wrong for interior/boundary")
	}
	if h.Contains(pt(4.5, 2, 2)) || h.Contains(pt(-0.5, 0, 0)) {
		t.Error("cube membership wrong for exterior")
	}
}

func TestHull3DDegeneratePlane(t *testing.T) {
	// All points in the z=1 plane: face enumeration must fall back to
	// the LP.
	pts := []geom.Point{pt(0, 0, 1), pt(4, 0, 1), pt(4, 4, 1), pt(0, 4, 1)}
	h, err := New(pts)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Contains(pt(2, 2, 1)) {
		t.Error("coplanar hull should contain interior plane point")
	}
	if h.Contains(pt(2, 2, 2)) {
		t.Error("coplanar hull should not contain off-plane point")
	}
}

func TestMergeCoversBothHulls(t *testing.T) {
	a, err := New([]geom.Point{pt(0, 0), pt(2, 0), pt(0, 2), pt(2, 2)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New([]geom.Point{pt(10, 10), pt(12, 10), pt(10, 12), pt(12, 12)})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []geom.Point{pt(1, 1), pt(11, 11), pt(6, 6)} {
		if !m.Contains(p) {
			t.Errorf("merged hull missing %v", p)
		}
	}
	if _, err := Merge(a, mustHull(t, []geom.Point{pt(0, 0, 0)})); err == nil {
		t.Error("cross-dimension merge should error")
	}
}

func mustHull(t *testing.T, pts []geom.Point) *Hull {
	t.Helper()
	h, err := New(pts)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestDistances(t *testing.T) {
	a := mustHull(t, []geom.Point{pt(0, 0), pt(2, 0), pt(0, 2), pt(2, 2)})
	b := mustHull(t, []geom.Point{pt(5, 0), pt(7, 0), pt(5, 2), pt(7, 2)})
	if d := a.CenterDist(b); d != 5 {
		t.Errorf("CenterDist = %v, want 5", d)
	}
	if d := a.BoundaryDist(b); d != 3 {
		t.Errorf("BoundaryDist = %v, want 3", d)
	}
	if d := a.BoundaryDist(a); d != 0 {
		t.Errorf("self BoundaryDist = %v, want 0", d)
	}
}

func TestRasterize2D(t *testing.T) {
	// Triangle (0,0)-(4,0)-(0,4) over a 6x6 space.
	h := mustHull(t, []geom.Point{pt(0, 0), pt(4, 0), pt(0, 4)})
	space := array.MustSpace(6, 6)
	set, err := h.Rasterize(space)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for x := 0; x <= 4; x++ {
		for y := 0; y <= 4-x; y++ {
			want++
			if !set.Contains(array.NewIndex(x, y)) {
				t.Errorf("missing lattice point (%d,%d)", x, y)
			}
		}
	}
	if set.Len() != want {
		t.Errorf("rasterized %d points, want %d", set.Len(), want)
	}
}

func TestRasterizeClipsToSpace(t *testing.T) {
	h := mustHull(t, []geom.Point{pt(-5, -5), pt(3, -5), pt(-5, 3), pt(3, 3)})
	space := array.MustSpace(4, 4)
	set, err := h.Rasterize(space)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 16 {
		t.Errorf("clipped rasterization = %d points, want 16", set.Len())
	}
	// Entirely outside.
	far := mustHull(t, []geom.Point{pt(100, 100), pt(101, 100), pt(100, 101)})
	set, err = far.Rasterize(space)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 0 {
		t.Errorf("outside hull rasterized %d points", set.Len())
	}
}

func TestRasterizeAll(t *testing.T) {
	a := mustHull(t, []geom.Point{pt(0, 0), pt(1, 0), pt(0, 1), pt(1, 1)})
	b := mustHull(t, []geom.Point{pt(1, 1), pt(2, 1), pt(1, 2), pt(2, 2)}) // overlaps at (1,1)
	space := array.MustSpace(4, 4)
	set, err := RasterizeAll([]*Hull{a, b}, space)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 7 { // 4 + 4 - 1 shared
		t.Errorf("union rasterization = %d, want 7", set.Len())
	}
	if _, err := RasterizeAll([]*Hull{a}, array.MustSpace(2, 2, 2)); err == nil {
		t.Error("rank mismatch should error")
	}
}

// TestHull3DRandomAgainstLP cross-validates face-based 3D membership
// against the LP oracle.
func TestHull3DRandomAgainstLP(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		var pts []geom.Point
		for i := 0; i < 10; i++ {
			pts = append(pts, pt(float64(rng.Intn(10)), float64(rng.Intn(10)), float64(rng.Intn(10))))
		}
		h, err := New(pts)
		if err != nil {
			t.Fatal(err)
		}
		faces := h.faceCache()
		if faces == nil {
			continue // degenerate; LP path is authoritative anyway
		}
		for probe := 0; probe < 30; probe++ {
			p := pt(float64(rng.Intn(12))-1, float64(rng.Intn(12))-1, float64(rng.Intn(12))-1)
			// Skip near-boundary points where tolerance differences
			// may flip the verdict.
			nearBoundary := false
			for _, f := range faces {
				if absF(f.n.Dot(p)-f.c) < 1e-4 {
					nearBoundary = true
					break
				}
			}
			if nearBoundary {
				continue
			}
			got := inHalfspaces(p, faces)
			want := InConvexCombination(p, h.Vertices())
			if got != want {
				t.Fatalf("trial %d: %v faces=%v lp=%v", trial, p, got, want)
			}
		}
	}
}
