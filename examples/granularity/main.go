// Granularity: chunk-level vs element-level debloating.
//
// Run with:
//
//	go run ./examples/granularity
//
// The paper's §VI notes that chunks are the practical unit of access
// in array files; this reproduction supports both chunk-granular
// carving (keep any chunk touching I'_Θ) and element-granular packing
// (keep exactly I'_Θ). The example debloats the same file both ways,
// compares the reductions, and writes the debloat manifest.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/array"
	"repro/internal/sdf"
	"repro/kondo"
)

func main() {
	work, err := os.MkdirTemp("", "kondo-granularity")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)

	// Build the data file and carve the subset for the CS2 program
	// (the Listing-1 diagonal band: its oblique boundary shows how
	// chunk alignment costs reduction).
	p, err := kondo.ProgramByName("CS2")
	if err != nil {
		log.Fatal(err)
	}
	space := p.Space()
	orig := filepath.Join(work, "mesh.sdf")
	w := sdf.NewWriter(orig)
	dw, err := w.CreateDataset("data", space, array.LongDouble, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := dw.Fill(func(ix array.Index) float64 {
		lin, _ := space.Linear(ix)
		return float64(lin)
	}); err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}

	cfg := kondo.DefaultConfig()
	cfg.Fuzz.Seed = 1
	res, err := kondo.Debloat(context.Background(), p, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d tests -> %d hulls, %d of %d indices kept\n\n",
		p.Name(), res.Fuzz.Evaluations, len(res.Hulls), res.Approx.Len(), space.Size())

	// Chunk granularity at two chunk sizes, then element granularity.
	for _, chunk := range [][]int{{32, 32}, {8, 8}} {
		out := filepath.Join(work, fmt.Sprintf("chunk%d.sdf", chunk[0]))
		stats, err := kondo.WriteSubset(orig, out, "data", res.Approx, chunk)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("chunk %2dx%-2d : %7d -> %7d bytes  (%.2f%% reduction, %d/%d chunks)\n",
			chunk[0], chunk[1], stats.OriginalBytes, stats.DebloatedBytes,
			100*stats.Reduction(), stats.KeptChunks, stats.TotalChunks)
	}
	packed := filepath.Join(work, "packed.sdf")
	stats, err := kondo.WritePacked(orig, packed, "data", res.Approx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("element     : %7d -> %7d bytes  (%.2f%% reduction, exact)\n\n",
		stats.OriginalBytes, stats.DebloatedBytes, 100*stats.Reduction())

	// Manifest: the carved hulls travel with the file.
	manifestPath := filepath.Join(work, "manifest.json")
	m := kondo.NewManifest(p.Name(), "data", space.Dims(), "element", nil, res, stats)
	if err := m.Save(manifestPath); err != nil {
		log.Fatal(err)
	}
	back, err := kondo.LoadManifest(manifestPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("manifest: %d hulls, %d kept indices, %d tests recorded\n",
		len(back.Hulls), back.KeptIndices, back.Evaluations)
	// A runtime can ask the manifest about coverage before touching
	// the file.
	for _, ix := range []kondo.Index{array.NewIndex(0, 0), array.NewIndex(127, 0)} {
		covered, err := back.Covers(ix)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  manifest.Covers(%v) = %v\n", ix, covered)
	}

	// The packed file still serves the program byte-identically.
	rt, closer, err := kondo.OpenRuntime(packed, "data", nil)
	if err != nil {
		log.Fatal(err)
	}
	defer closer.Close()
	v, err := rt.ReadElement(array.NewIndex(0, 0))
	if err != nil || v != 0 {
		log.Fatalf("packed read = %v, %v", v, err)
	}
	fmt.Println("\npacked file serves kept elements with original values; carved reads raise ErrDataMissing")
}
