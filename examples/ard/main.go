// ARD: the Atmospheric River Detection workload of paper Table III.
//
// Run with:
//
//	go run ./examples/ard
//
// ARD reads a block whose width and height are parameterized at a
// parameterized time plane of a 3D mesh. The paper's file is 217 GB;
// this model keeps the same geometry scaled down (the fuzzer and
// carver are size-independent, §V-D4). The example compares Kondo
// against brute force at the same test budget — brute force gets stuck
// sweeping the temporal dimension of the lexicographically first
// block shape, while Kondo's schedule spreads across Θ.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/baseline"
	"repro/kondo"
)

func main() {
	p, err := kondo.ProgramByName("ARD")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("application: %s — %s\n", p.Name(), p.Description())
	fmt.Printf("array: %s (%d cells), |Θ| = %d\n\n",
		p.Space(), p.Space().Size(), p.Params().Valuations())

	const budget = 4000

	cfg := kondo.DefaultConfig()
	cfg.Fuzz.Seed = 1
	cfg.Fuzz.MaxEvals = budget
	cfg.Fuzz.MaxIter = 2 * budget
	res, err := kondo.Debloat(context.Background(), p, cfg)
	if err != nil {
		log.Fatal(err)
	}
	truth, err := kondo.GroundTruth(p)
	if err != nil {
		log.Fatal(err)
	}
	pr := kondo.Evaluate(truth, res.Approx)
	fmt.Printf("Kondo  (%4d tests): precision %.3f, recall %.3f, debloat %.2f%%\n",
		res.Fuzz.Evaluations, pr.Precision, pr.Recall,
		100*kondo.BloatFraction(p.Space(), res.Approx))

	bf, err := baseline.BruteForce(context.Background(), p, budget, 0)
	if err != nil {
		log.Fatal(err)
	}
	bfPR := kondo.Evaluate(truth, bf.Indices)
	fmt.Printf("BF     (%4d tests): precision %.3f, recall %.3f\n",
		bf.Evaluations, bfPR.Precision, bfPR.Recall)

	fmt.Println("\npaper Table III shape: Kondo 1 & 1 with ~97.2% debloat; BF recall 0.24")
}
