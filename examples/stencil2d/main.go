// Stencil2D: the paper's end-to-end container scenario (Fig. 2).
//
// Run with:
//
//	go run ./examples/stencil2d
//
// Alice ships a cross-stencil application in a container with a
// 128x128 data file. The example builds the container, debloats its
// data file for the advertised PARAM space, rebuilds the image, and
// shows that Bob's runs behave identically on the smaller image —
// including what happens when a run strays outside the carved subset.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/array"
	"repro/internal/sdf"
	"repro/kondo"
)

const spec = `
FROM ubuntu:20.04
RUN apt-get install -y gcc
RUN apt-get install -y libhdf5-dev
ADD ./mnist.sdf /stencil/mnist.sdf
ADD ./crossStencil.c /stencil/crossStencil.c
PARAM [0-127, 0-127]
ENTRYPOINT ["CS2"]
CMD [1, 1, /stencil/mnist.sdf]
`

func main() {
	work, err := os.MkdirTemp("", "kondo-stencil2d")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)

	// --- Alice's side: payload + container build ---
	srcDir := filepath.Join(work, "src")
	if err := os.MkdirAll(srcDir, 0o755); err != nil {
		log.Fatal(err)
	}
	space := array.MustSpace(128, 128)
	writeData(filepath.Join(srcDir, "mnist.sdf"), space)
	if err := os.WriteFile(filepath.Join(srcDir, "crossStencil.c"),
		[]byte("/* Listing 1 of the paper */\n"), 0o644); err != nil {
		log.Fatal(err)
	}

	parsed, err := kondo.ParseSpec(strings.NewReader(spec))
	if err != nil {
		log.Fatal(err)
	}
	img, err := kondo.BuildImage(parsed, srcDir, filepath.Join(work, "image"))
	if err != nil {
		log.Fatal(err)
	}
	origSize, _ := img.Size()
	fmt.Printf("built container image: %d bytes\n", origSize)

	// --- Kondo: approximate the index subset for the PARAM space ---
	p, err := kondo.ProgramForSpace(parsed.Entrypoint, space.Dims())
	if err != nil {
		log.Fatal(err)
	}
	cfg := kondo.DefaultConfig()
	cfg.Fuzz.Seed = 7
	res, err := kondo.Debloat(context.Background(), p, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Kondo: %d debloat tests -> %d hulls, %.2f%% bloat identified\n",
		res.Fuzz.Evaluations, len(res.Hulls),
		100*kondo.BloatFraction(space, res.Approx))

	// --- rebuild the image with the debloated data file ---
	deb, stats, err := img.DebloatData(filepath.Join(work, "image-debloated"),
		"/stencil/mnist.sdf", "data", res.Approx, []int{16, 16})
	if err != nil {
		log.Fatal(err)
	}
	debSize, _ := deb.Size()
	fmt.Printf("debloated image: %d bytes (data file reduced %.2f%%)\n",
		debSize, 100*stats.Reduction())

	// --- Bob's side: supported runs behave identically ---
	for _, v := range [][]float64{{1, 1}, {0, 1}, {1, 2}} {
		rep, err := deb.Run(v, "data", nil)
		if err != nil {
			log.Fatalf("run %v failed: %v", v, err)
		}
		fmt.Printf("run stepX=%g stepY=%g: ok (%d misses)\n", v[0], v[1], rep.Misses)
	}

	// --- a run outside the carved subset raises data-missing ... ---
	// stepX > stepY fails the program's guard and reads nothing, so to
	// show the exception we carve a deliberately smaller subset.
	small, _, err := img.DebloatData(filepath.Join(work, "image-tiny"),
		"/stencil/mnist.sdf", "data", cornerOnly(space), []int{16, 16})
	if err != nil {
		log.Fatal(err)
	}
	_, err = small.Run([]float64{1, 1}, "data", nil)
	if errors.Is(err, kondo.ErrDataMissing) {
		fmt.Println("under-carved image: run raised the data-missing exception (as designed)")
	} else {
		log.Fatalf("expected data-missing exception, got %v", err)
	}

	// --- ... and recovers when a remote fetcher is attached (§VI) ---
	fetcher := kondo.NewOriginFetcher(filepath.Join(srcDir, "mnist.sdf"))
	defer fetcher.Close()
	rep, err := small.Run([]float64{1, 1}, "data", fetcher)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with remote fetch: run completed, %d missing elements recovered\n", rep.Misses)
}

// writeData creates the 256 KB long-double data file of §V-B.
func writeData(path string, space array.Space) {
	w := sdf.NewWriter(path)
	dw, err := w.CreateDataset("data", space, array.LongDouble, []int{16, 16})
	if err != nil {
		log.Fatal(err)
	}
	if err := dw.Fill(func(ix array.Index) float64 {
		lin, _ := space.Linear(ix)
		return float64(lin)
	}); err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
}

// cornerOnly keeps just the origin 16x16 block — deliberately smaller
// than any real run needs.
func cornerOnly(space array.Space) *kondo.IndexSet {
	set := array.NewIndexSet(space)
	for r := 0; r < 16; r++ {
		for c := 0; c < 16; c++ {
			set.Add(array.NewIndex(r, c))
		}
	}
	return set
}
