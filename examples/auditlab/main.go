// Auditlab: a tour of the fine-grained I/O event audit (paper §IV-C).
//
// Run with:
//
//	go run ./examples/auditlab
//
// The example replays the paper's worked event-merging example, then
// audits a real program run end-to-end: traced file handle → syscall
// events → interval B-tree merging → byte ranges → resolved array
// indices, and shows the audit overhead on the same reads.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/array"
	"repro/internal/ioevent"
	"repro/internal/sdf"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	paperExample()
	fmt.Println()
	realAudit()
}

// paperExample reproduces §IV-C's event sequence: e1(P1,R,0,110),
// e2(P2,R,70,30), e3(P1,R,130,20), e4(P1,R,90,30) merge to accessed
// offsets (0,120) and (130,150).
func paperExample() {
	store := ioevent.NewStore()
	events := []ioevent.Event{
		{ID: ioevent.ID{PID: 1, File: "d"}, Op: ioevent.OpRead, Offset: 0, Size: 110},
		{ID: ioevent.ID{PID: 2, File: "d"}, Op: ioevent.OpRead, Offset: 70, Size: 30},
		{ID: ioevent.ID{PID: 1, File: "d"}, Op: ioevent.OpRead, Offset: 130, Size: 20},
		{ID: ioevent.ID{PID: 1, File: "d"}, Op: ioevent.OpRead, Offset: 90, Size: 30},
	}
	fmt.Println("paper §IV-C example:")
	for _, e := range events {
		fmt.Println("  ", e)
		if err := store.Record(e); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Print("  merged accessed offsets:")
	for _, r := range store.FileRanges("d") {
		fmt.Printf(" (%d,%d)", r.Start, r.End)
	}
	fmt.Println()
}

// realAudit traces a PRL2D run against a real file and resolves the
// audited ranges back to indices.
func realAudit() {
	dir, err := os.MkdirTemp("", "kondo-auditlab")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	space := array.MustSpace(128, 128)
	path := filepath.Join(dir, "mesh.sdf")
	w := sdf.NewWriter(path)
	dw, err := w.CreateDataset("data", space, array.LongDouble, []int{16, 16})
	if err != nil {
		log.Fatal(err)
	}
	if err := dw.Fill(func(ix array.Index) float64 {
		lin, _ := space.Linear(ix)
		return float64(lin)
	}); err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}

	p := workload.MustPRL(128, 128)
	v := []float64{100, 90}

	// Untraced run for the overhead comparison.
	start := time.Now()
	plain, err := sdf.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	ds, _ := plain.Dataset("data")
	if err := p.Run(v, &workload.Env{Acc: workload.NewFileAccessor(ds)}); err != nil {
		log.Fatal(err)
	}
	plain.Close()
	untraced := time.Since(start)

	// Traced run.
	start = time.Now()
	store := ioevent.NewStore()
	tr := trace.NewTracer(store)
	tf, err := tr.Open(tr.NewProcess(), path)
	if err != nil {
		log.Fatal(err)
	}
	af, err := sdf.OpenFrom(tf)
	if err != nil {
		log.Fatal(err)
	}
	ads, _ := af.Dataset("data")
	if err := p.Run(v, &workload.Env{Acc: workload.NewFileAccessor(ads)}); err != nil {
		log.Fatal(err)
	}
	traced := time.Since(start)

	name := filepath.Base(path)
	ranges := store.FileRanges(name)
	indices, err := trace.AccessedIndices(store, name, ads)
	if err != nil {
		log.Fatal(err)
	}
	af.Close()

	fmt.Printf("real audit of %s(extent0=%g, extent1=%g):\n", p.Name(), v[0], v[1])
	fmt.Printf("  %d syscall events -> %d merged byte ranges -> %d array indices\n",
		store.Events(), len(ranges), indices.Len())
	fmt.Printf("  untraced %v, traced %v (overhead %.1f%%; paper §V-D6 reports ~31%% average)\n",
		untraced, traced, 100*float64(traced-untraced)/float64(untraced))
}
