// Quickstart: debloat a benchmark program and inspect the result.
//
// Run with:
//
//	go run ./examples/quickstart
//
// This walks the minimal Kondo flow: pick an application, let the
// fuzzer+carver approximate the index subset I'_Θ it can ever access,
// and compare against the exact ground truth.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/kondo"
)

func main() {
	// The base cross-stencil program of the paper's Listing 1: it
	// walks a 128x128 array diagonally, reading 2x2 stencils, and only
	// supports runs with stepX <= stepY — so it can never read above
	// the diagonal.
	p, err := kondo.ProgramByName("CS2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("application: %s — %s\n", p.Name(), p.Description())
	fmt.Printf("parameter space Θ has %d valuations; brute force would need that many runs\n\n",
		p.Params().Valuations())

	// Run the pipeline with the paper's configuration.
	cfg := kondo.DefaultConfig()
	cfg.Fuzz.Seed = 1
	res, err := kondo.Debloat(context.Background(), p, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Kondo ran %d debloat tests (%.1f%% of brute force)\n",
		res.Fuzz.Evaluations,
		100*float64(res.Fuzz.Evaluations)/float64(p.Params().Valuations()))
	fmt.Printf("carved %d convex hull(s) covering %d of %d indices\n",
		len(res.Hulls), res.Approx.Len(), p.Space().Size())
	fmt.Printf("identified bloat: %.2f%% of the data file\n\n",
		100*kondo.BloatFraction(p.Space(), res.Approx))

	// How good is the approximation? (Ground truth is exact here; for
	// real applications you would not have it.)
	truth, err := kondo.GroundTruth(p)
	if err != nil {
		log.Fatal(err)
	}
	pr := kondo.Evaluate(truth, res.Approx)
	fmt.Printf("precision: %.3f (fraction of kept data that was needed)\n", pr.Precision)
	fmt.Printf("recall:    %.3f (fraction of needed data that was kept; 1.0 = sound)\n", pr.Recall)
}
