// Remote recovery: the §VI missing-data path over a real network hop.
//
// Run with:
//
//	go run ./examples/remote-recovery
//
// The example builds a chunked ARD-style climate origin, debloats it
// against a deliberately tight approximation, and serves the origin
// over HTTP with the chunk-granular data plane (internal/dataserve —
// the same handler cmd/kondo-serve wraps). It then replays the same
// carved-away read twice: once with the legacy element-per-round-trip
// client and once with the caching batch fetcher, verifying the
// recovered values match byte-for-byte and reporting the round-trip
// reduction (expected well above 10x).
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"

	"repro/internal/array"
	"repro/internal/sdf"
	"repro/internal/workload"
	"repro/kondo"
)

func main() {
	work, err := os.MkdirTemp("", "kondo-remote")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)

	// Chunked ARD-style origin: 48x64 grid over 32 time steps, stored
	// as 8x8x8 chunks so the server hands out real storage chunks.
	ard, err := workload.NewARD(48, 64, 32, 4, 16, 3, 8)
	if err != nil {
		log.Fatal(err)
	}
	space := ard.Space()
	origin := filepath.Join(work, "origin.sdf")
	w := sdf.NewWriter(origin)
	dw, err := w.CreateDataset("data", space, array.Float64, []int{8, 8, 8})
	if err != nil {
		log.Fatal(err)
	}
	if err := dw.Fill(func(ix array.Index) float64 {
		lin, _ := space.Linear(ix)
		return float64(lin) * 0.5
	}); err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}

	// Deliberately under-carve: keep only the first 8 time planes, so
	// reads at later times must fetch remotely.
	keep := array.NewIndexSet(space)
	space.Each(func(ix array.Index) bool {
		if ix[2] < 8 {
			keep.Add(ix)
		}
		return true
	})
	deb := filepath.Join(work, "debloated.sdf")
	stats, err := kondo.WriteSubset(origin, deb, "data", keep, []int{8, 8, 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("debloated file:  %.2f%% reduction (deliberately under-carved)\n", 100*stats.Reduction())

	// Chunk-granular origin server on loopback.
	srv, err := kondo.NewDataServer(origin)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	baseURL := "http://" + ln.Addr().String()
	fmt.Printf("origin server:   %s\n", baseURL)

	// The replayed access: a 16x8 spatial window at time plane 20 —
	// fully carved away, so every element is a local miss.
	readSlab := func(fetcher kondo.Fetcher) []float64 {
		rt, closer, err := kondo.OpenRuntime(deb, "data", fetcher)
		if err != nil {
			log.Fatal(err)
		}
		defer closer.Close()
		vals, err := rt.ReadSlab([]int{0, 0, 20}, []int{16, 8, 1})
		if err != nil {
			log.Fatal(err)
		}
		if rt.Misses() == 0 {
			log.Fatal("expected carved-away reads")
		}
		return vals
	}

	// Pass 1: legacy per-element protocol (one round trip per value).
	elemClient := kondo.NewRemoteClient(baseURL)
	elemVals := readSlab(elemClient)
	fmt.Printf("element client:  %d values via %d HTTP round trips\n",
		len(elemVals), elemClient.Fetched())

	// Pass 2: caching batch fetcher (one round trip per chunk).
	cached := kondo.NewCachedFetcher(baseURL)
	cachedVals := readSlab(cached)
	st := cached.Stats()
	fmt.Printf("cached fetcher:  %d values via %d HTTP round trips (%.1f%% cache hit)\n",
		len(cachedVals), st.RoundTrips, 100*st.HitRate())

	for i := range elemVals {
		if elemVals[i] != cachedVals[i] {
			log.Fatalf("value %d differs: element=%v cached=%v", i, elemVals[i], cachedVals[i])
		}
	}
	reduction := float64(elemClient.Fetched()) / float64(st.RoundTrips)
	fmt.Printf("values match byte-for-byte; %.0fx fewer round trips\n", reduction)

	fmt.Printf("server metrics:  %s\n", srv.Metrics())
}
