// Remote recovery: the §VI missing-data path over a real network hop.
//
// Run with:
//
//	go run ./examples/remote-recovery
//
// The example debloats a data file against a deliberately tight
// approximation, starts an HTTP origin server on the loopback
// interface, and runs the program against the debloated file with the
// runtime's remote fetcher attached: every carved-away access is
// transparently pulled from the server, and the run's results match
// the original byte-for-byte.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"

	"repro/internal/array"
	"repro/internal/debloat"
	"repro/internal/remote"
	"repro/internal/sdf"
	"repro/internal/workload"
	"repro/kondo"
)

func main() {
	work, err := os.MkdirTemp("", "kondo-remote")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)

	// Origin file.
	p := workload.MustCS(2, 64)
	space := p.Space()
	origin := filepath.Join(work, "origin.sdf")
	w := sdf.NewWriter(origin)
	dw, err := w.CreateDataset("data", space, array.Float64, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := dw.Fill(func(ix array.Index) float64 {
		lin, _ := space.Linear(ix)
		return float64(lin) * 1.5
	}); err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}

	// Deliberately under-carve: keep only the first 16 rows, so runs
	// that reach deeper must fetch remotely.
	small := array.NewIndexSet(space)
	space.Each(func(ix array.Index) bool {
		if ix[1] < 16 {
			small.Add(ix)
		}
		return true
	})
	deb := filepath.Join(work, "debloated.sdf")
	stats, err := kondo.WriteSubset(origin, deb, "data", small, []int{8, 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("debloated file: %.2f%% reduction (deliberately under-carved)\n", 100*stats.Reduction())

	// Origin server on loopback.
	srv, err := remote.NewServer(origin)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	baseURL := "http://" + ln.Addr().String()
	fmt.Printf("origin server:  %s\n", baseURL)

	// Run the program against the debloated file with remote recovery.
	client := remote.NewClient(baseURL, nil)
	f, err := sdf.Open(deb)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	ds, err := f.Dataset("data")
	if err != nil {
		log.Fatal(err)
	}
	rt := debloat.NewRuntime(ds, client)

	// stepX=1, stepY=2 walks well past column 16.
	if err := p.Run([]float64{1, 2}, &workload.Env{Acc: rt}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run completed:  %d local misses, %d elements fetched over HTTP\n",
		rt.Misses(), client.Fetched())

	// Verify the recovered values equal the origin's.
	of, err := sdf.Open(origin)
	if err != nil {
		log.Fatal(err)
	}
	defer of.Close()
	ods, _ := of.Dataset("data")
	probe := array.NewIndex(20, 40) // outside the kept columns
	got, err := rt.ReadElement(probe)
	if err != nil {
		log.Fatal(err)
	}
	want, err := ods.ReadElement(probe)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spot check %v:  remote=%v origin=%v (match=%v)\n", probe, got, want, got == want)
}
