#!/bin/sh
# fleet-demo: run one distributed campaign across a kondo-coord
# coordinator and two named kondo-worker evaluators over loopback with
# fleet tracing on, then assert two things about the observability
# layer (DESIGN.md §13):
#
#   1. determinism — the distributed digest, recorded with the full
#      telemetry path active, is bit-identical to an in-process -local
#      baseline;
#   2. stitching — the coordinator's single -trace-out file is a valid
#      Chrome trace spanning at least three distinct process lanes
#      (coordinator + both workers), which `kondo-viz -check-trace
#      -min-pids 3` verifies.
#
# Open the trace in https://ui.perfetto.dev: the coordinator lane shows
# campaign spans and lease lifecycle instants, and each worker lane the
# lease evaluations re-based onto the coordinator's clock.
set -eu

PROGRAM="${PROGRAM:-CS2}"
BUDGET="${BUDGET:-800}"
SEED="${SEED:-1}"

workdir=$(mktemp -d "${TMPDIR:-/tmp}/fleet-demo.XXXXXX")
pids=""
cleanup() {
    for pid in $pids; do
        kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "fleet-demo: building kondo-coord, kondo-worker, kondo-viz"
go build -o "$workdir/kondo-coord" ./cmd/kondo-coord
go build -o "$workdir/kondo-worker" ./cmd/kondo-worker
go build -o "$workdir/kondo-viz" ./cmd/kondo-viz

echo "fleet-demo: local baseline (-local, in-process)"
"$workdir/kondo-coord" -local -program "$PROGRAM" -budget "$BUDGET" -seed "$SEED" \
    -digest-out "$workdir/local.digest" -log-level warn

echo "fleet-demo: coordinator + workers alice and bob, fleet trace on"
"$workdir/kondo-coord" -program "$PROGRAM" -budget "$BUDGET" -seed "$SEED" \
    -addr 127.0.0.1:0 -addr-file "$workdir/coord.addr" -span 4 \
    -digest-out "$workdir/fleet.digest" -trace-out "$workdir/fleet-trace.json" \
    -log-level warn -worker-wait 60s &
coord_pid=$!
pids="$coord_pid"

# Wait for the coordinator to publish its ephemeral address.
i=0
while [ ! -s "$workdir/coord.addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ] || ! kill -0 "$coord_pid" 2>/dev/null; then
        echo "fleet-demo: coordinator failed to start" >&2
        exit 1
    fi
    sleep 0.1
done
addr=$(cat "$workdir/coord.addr")

"$workdir/kondo-worker" -coord "$addr" -name alice -idle-exit 5s -log-level warn &
pids="$pids $!"
"$workdir/kondo-worker" -coord "$addr" -name bob -idle-exit 5s -log-level warn &
pids="$pids $!"

if ! wait "$coord_pid"; then
    echo "fleet-demo: distributed campaign failed" >&2
    exit 1
fi

echo "fleet-demo: comparing digests (telemetry must not perturb the campaign)"
cat "$workdir/local.digest" "$workdir/fleet.digest"
if ! cmp -s "$workdir/local.digest" "$workdir/fleet.digest"; then
    echo "fleet-demo: FAIL — traced distributed digest differs from local baseline" >&2
    exit 1
fi

echo "fleet-demo: validating the stitched fleet trace (>= 3 process lanes)"
"$workdir/kondo-viz" -check-trace "$workdir/fleet-trace.json" -min-pids 3
echo "fleet-demo: OK — one trace file spans the coordinator and both workers"
