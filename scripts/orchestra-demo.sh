#!/bin/sh
# orchestra-demo: run one fuzz campaign twice — in-process, and
# distributed across a kondo-coord coordinator with two kondo-worker
# evaluators over loopback (one worker crashing mid-lease so a lease
# gets re-issued) — and assert the two result digests are bit-identical.
# This is the distributed determinism contract of DESIGN.md §12,
# exercised with real processes and real TCP instead of test goroutines.
set -eu

PROGRAM="${PROGRAM:-CS2}"
BUDGET="${BUDGET:-800}"
SEED="${SEED:-1}"

workdir=$(mktemp -d "${TMPDIR:-/tmp}/orchestra-demo.XXXXXX")
pids=""
cleanup() {
    for pid in $pids; do
        kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "orchestra-demo: building kondo-coord and kondo-worker"
go build -o "$workdir/kondo-coord" ./cmd/kondo-coord
go build -o "$workdir/kondo-worker" ./cmd/kondo-worker

echo "orchestra-demo: local baseline (-local, in-process)"
"$workdir/kondo-coord" -local -program "$PROGRAM" -budget "$BUDGET" -seed "$SEED" \
    -digest-out "$workdir/local.digest" -log-level warn

echo "orchestra-demo: coordinator + 2 workers over loopback (one crashes mid-lease)"
"$workdir/kondo-coord" -program "$PROGRAM" -budget "$BUDGET" -seed "$SEED" \
    -addr 127.0.0.1:0 -addr-file "$workdir/coord.addr" \
    -digest-out "$workdir/dist.digest" -log-level warn -worker-wait 60s &
coord_pid=$!
pids="$coord_pid"

# Wait for the coordinator to publish its ephemeral address.
i=0
while [ ! -s "$workdir/coord.addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ] || ! kill -0 "$coord_pid" 2>/dev/null; then
        echo "orchestra-demo: coordinator failed to start" >&2
        exit 1
    fi
    sleep 0.1
done
addr=$(cat "$workdir/coord.addr")

"$workdir/kondo-worker" -coord "$addr" -name steady -idle-exit 5s -log-level warn &
pids="$pids $!"
# The doomed worker completes two leases, then crashes while holding a
# third; the coordinator re-issues it and the digest must not change.
"$workdir/kondo-worker" -coord "$addr" -name doomed -max-leases 2 -log-level error &
pids="$pids $!"

if ! wait "$coord_pid"; then
    echo "orchestra-demo: distributed campaign failed" >&2
    exit 1
fi

echo "orchestra-demo: comparing digests"
cat "$workdir/local.digest" "$workdir/dist.digest"
if ! cmp -s "$workdir/local.digest" "$workdir/dist.digest"; then
    echo "orchestra-demo: FAIL — distributed digest differs from local baseline" >&2
    exit 1
fi
echo "orchestra-demo: OK — distributed campaign is bit-identical to the local run"
