#!/bin/sh
# verify-demo: end-to-end verified recovery (DESIGN.md §15):
#
#   1. debloat — `kondo` carves a subset and writes a manifest whose
#      merkle section roots the ORIGINAL dataset's serving chunks;
#   2. verified soak — `kondo-load -manifest` drives the origin through
#      the verifying client: every miss fetches a KDB2 proof frame and
#      checks it against the pinned root before caching (exit 0, all
#      proofs good);
#   3. tamper — ONE byte of the origin file is flipped in place while
#      kondo-serve keeps running (its memoized Merkle tree now
#      disagrees with the bytes it serves);
#   4. rejection — a second verified run must fail terminally (exit 1,
#      "chunk verification FAILED"), count the rejection in its JSON
#      result, and report it live on its own /statusz verify view.
set -eu

SEED="${SEED:-1}"

workdir=$(mktemp -d "${TMPDIR:-/tmp}/verify-demo.XXXXXX")
serve_pid=""
load_pid=""
cleanup() {
    for pid in "$serve_pid" "$load_pid"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "verify-demo: building sdfgen, kondo, kondo-serve, kondo-load"
go build -o "$workdir/sdfgen" ./cmd/sdfgen
go build -o "$workdir/kondo" ./cmd/kondo
go build -o "$workdir/kondo-serve" ./cmd/kondo-serve
go build -o "$workdir/kondo-load" ./cmd/kondo-load

echo "verify-demo: materializing a 128x128 origin (16x16 chunks)"
"$workdir/sdfgen" -out "$workdir/origin.sdf" -dims 128x128 -dtype float64 -chunk 16x16

echo "verify-demo: debloating with a merkle-rooted manifest"
"$workdir/kondo" -program CS2 -budget 400 -seed "$SEED" \
    -data "$workdir/origin.sdf" -out "$workdir/debloated.sdf" \
    -manifest "$workdir/manifest.json" -log-level warn
grep -q '"merkle"' "$workdir/manifest.json" || {
    echo "verify-demo: manifest has no merkle section" >&2
    exit 1
}

echo "verify-demo: starting kondo-serve over the pristine origin"
"$workdir/kondo-serve" -origin "$workdir/origin.sdf" \
    -addr 127.0.0.1:0 -addr-file "$workdir/serve.addr" -log-level warn &
serve_pid=$!
i=0
while [ ! -s "$workdir/serve.addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ] || ! kill -0 "$serve_pid" 2>/dev/null; then
        echo "verify-demo: kondo-serve failed to start" >&2
        exit 1
    fi
    sleep 0.1
done
addr=$(cat "$workdir/serve.addr")

echo "verify-demo: verified soak against the pristine origin (must pass)"
"$workdir/kondo-load" -url "http://$addr" -manifest "$workdir/manifest.json" \
    -requests 2000 -concurrency 8 -popularity uniform -seed "$SEED" \
    -json "$workdir/clean.json" -log-level warn
grep -q '"VerifyFailed": 0' "$workdir/clean.json" || {
    echo "verify-demo: clean run reported verification failures" >&2
    exit 1
}
grep -q '"VerifyOK": 0' "$workdir/clean.json" && {
    echo "verify-demo: clean run verified nothing" >&2
    exit 1
}

echo "verify-demo: flipping one byte of the origin under the running server"
size=$(wc -c < "$workdir/origin.sdf")
off=$((size - 9))
byte=$(od -An -tu1 -j "$off" -N1 "$workdir/origin.sdf" | tr -d ' ')
flipped=$(( (byte + 1) % 256 ))
# shellcheck disable=SC2059
printf "$(printf '\\%03o' "$flipped")" | \
    dd of="$workdir/origin.sdf" bs=1 seek="$off" conv=notrunc 2>/dev/null

echo "verify-demo: verified run against the tampered origin (must reject)"
# Open-loop at a fixed rate so the run spans a few seconds — long
# enough to scrape the live /statusz verify view mid-run.
rc=0
"$workdir/kondo-load" -url "http://$addr" -manifest "$workdir/manifest.json" \
    -mode open -rate 500 -duration 4s -concurrency 8 -popularity uniform -seed "$SEED" \
    -status-addr 127.0.0.1:0 -status-addr-file "$workdir/status.addr" \
    -json "$workdir/tampered.json" -log-level warn 2> "$workdir/tampered.log" &
load_pid=$!
# Scrape the harness's live /statusz verify view mid-run: the tampered
# chunk's rejection must show up there, not only in the final result.
statusz=""
i=0
while [ "$i" -lt 200 ]; do
    i=$((i + 1))
    if [ -s "$workdir/status.addr" ]; then
        statusz=$(curl -fsS "http://$(cat "$workdir/status.addr")/statusz" 2>/dev/null || true)
        case "$statusz" in
        *'"verify_failed":'[1-9]*) break ;;
        esac
    fi
    kill -0 "$load_pid" 2>/dev/null || break
    sleep 0.05
done
if wait "$load_pid"; then rc=0; else rc=$?; fi
load_pid=""

[ "$rc" -eq 1 ] || {
    echo "verify-demo: tampered run exited $rc, want 1" >&2
    exit 1
}
grep -q 'chunk verification FAILED' "$workdir/tampered.log" || {
    echo "verify-demo: tampered run did not report the terminal rejection" >&2
    cat "$workdir/tampered.log" >&2
    exit 1
}
grep -q '"VerifyFailed": 0' "$workdir/tampered.json" && {
    echo "verify-demo: tampered run counted no verification failures" >&2
    exit 1
}
case "$statusz" in
*'"verify_failed":'[1-9]*) ;;
*)
    echo "verify-demo: /statusz never showed the rejection: $statusz" >&2
    exit 1
    ;;
esac

echo "verify-demo: OK — one flipped byte rejected end to end (exit 1, JSON counters, live /statusz)"
