#!/bin/sh
# load-demo: drive a kondo-serve recovery origin with the kondo-load
# heavy-traffic harness over loopback and assert the serving
# observability layer end to end (DESIGN.md §14):
#
#   1. stitching — kondo-load stamps a trace context onto every
#      request, kondo-serve records child spans under it, and the
#      harness pulls /tracez and writes ONE Chrome trace spanning both
#      processes, which `kondo-viz -check-trace -min-pids 2` verifies;
#   2. SLO — the origin runs an error-budget SLO over its chunk/slab
#      endpoints and the load run soak-polls /sloz, failing if the
#      budget is ever exhausted;
#   3. drain — SIGTERM flips the origin's /healthz to 503 before it
#      stops accepting work, so balancers drain it gracefully;
#   4. gate — the committed BENCH_serve.json baseline still passes
#      `kondo-bench -exp serve -check`.
#
# Open the trace in https://ui.perfetto.dev: the kondo-load lane shows
# client fetch spans (cache verdicts, retries) and the kondo-serve lane
# the matching serve.chunk child spans re-based onto the client clock.
set -eu

REQUESTS="${REQUESTS:-3000}"
CONCURRENCY="${CONCURRENCY:-8}"
SEED="${SEED:-1}"

workdir=$(mktemp -d "${TMPDIR:-/tmp}/load-demo.XXXXXX")
serve_pid=""
cleanup() {
    if [ -n "$serve_pid" ]; then
        kill "$serve_pid" 2>/dev/null || true
    fi
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "load-demo: building sdfgen, kondo-serve, kondo-load, kondo-viz"
go build -o "$workdir/sdfgen" ./cmd/sdfgen
go build -o "$workdir/kondo-serve" ./cmd/kondo-serve
go build -o "$workdir/kondo-load" ./cmd/kondo-load
go build -o "$workdir/kondo-viz" ./cmd/kondo-viz

echo "load-demo: materializing a 128x128 origin (16x16 chunks)"
"$workdir/sdfgen" -out "$workdir/origin.sdf" -dims 128x128 -dtype float64 -chunk 16x16

echo "load-demo: starting kondo-serve with tracing and a chunk/slab SLO"
"$workdir/kondo-serve" -origin "$workdir/origin.sdf" \
    -addr 127.0.0.1:0 -addr-file "$workdir/serve.addr" \
    -trace -slo-endpoints chunk,slab -slo-latency 100ms -slo-target 0.99 \
    -drain-delay 100ms -log-level warn &
serve_pid=$!

# Wait for the origin to publish its ephemeral address.
i=0
while [ ! -s "$workdir/serve.addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ] || ! kill -0 "$serve_pid" 2>/dev/null; then
        echo "load-demo: kondo-serve failed to start" >&2
        exit 1
    fi
    sleep 0.1
done
addr=$(cat "$workdir/serve.addr")

echo "load-demo: closed-loop run, $REQUESTS requests x $CONCURRENCY workers, soak-polling /sloz"
"$workdir/kondo-load" -url "http://$addr" \
    -requests "$REQUESTS" -concurrency "$CONCURRENCY" -seed "$SEED" \
    -soak-interval 250ms \
    -trace-out "$workdir/load-trace.json" -json "$workdir/load-result.json" \
    -log-level warn

echo "load-demo: validating the stitched client+server trace (>= 2 process lanes)"
"$workdir/kondo-viz" -check-trace "$workdir/load-trace.json" -min-pids 2

echo "load-demo: draining the origin (SIGTERM; /healthz must go 503 before exit)"
kill -TERM "$serve_pid"
if ! wait "$serve_pid"; then
    echo "load-demo: kondo-serve exited non-zero on drain" >&2
    exit 1
fi
serve_pid=""

echo "load-demo: checking the committed BENCH_serve.json baseline"
go run ./cmd/kondo-bench -exp serve -quick -check .

echo "load-demo: OK — one trace file spans kondo-load and kondo-serve, budget intact"
