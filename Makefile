# Developer targets. `make verify` is the tier-1 gate (see ROADMAP.md).

GO ?= go

.PHONY: build test race vet verify bench-quick

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the suite under the race detector in -short mode (the
# timing-sensitive tests skip themselves) — this is what exercises the
# fuzz worker pool and the recovery data plane (dataserve cache /
# singleflight, remote server, origin fetcher) for data races.
race:
	$(GO) test -race -short ./...

# verify is the full tier-1 check: build, vet, plain tests, and the
# race-detector pass over the concurrent paths.
verify: build vet test race
	@echo "verify: OK"

bench-quick:
	$(GO) run ./cmd/kondo-bench -exp all -quick
