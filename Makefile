# Developer targets. `make verify` is the tier-1 gate (see ROADMAP.md).

GO ?= go

.PHONY: build test race vet verify bench-quick bench-json bench-check lint-prints lint-metrics-docs trace-demo orchestra-demo fleet-demo load-demo verify-demo

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the suite under the race detector in -short mode (the
# timing-sensitive tests skip themselves) — this is what exercises the
# fuzz worker pool and the recovery data plane (dataserve cache /
# singleflight, remote server, origin fetcher) for data races.
race:
	$(GO) test -race -short ./...

# lint-prints rejects unconditional printing from library packages:
# everything under internal/ must route diagnostics through
# internal/obs (slog, off by default) so importing a Kondo package
# never writes to a host program's stdout/stderr. CLIs under cmd/ are
# the allowlist — user-facing output belongs there.
lint-prints:
	@bad=$$(grep -rn 'fmt\.Print\|log\.Print\|log\.Fatal\|log\.Panic\|\bprintln(' internal --include='*.go' | grep -v '_test\.go' || true); \
	if [ -n "$$bad" ]; then \
		echo "lint-prints: unconditional printing in library code (use internal/obs):"; \
		echo "$$bad"; \
		exit 1; \
	fi
	@echo "lint-prints: OK"

# lint-metrics-docs checks that every kondo_* instrument registered in
# code appears (backtick-quoted) in the README's metrics reference
# table, so the docs cannot silently drift from the telemetry surface.
lint-metrics-docs:
	@missing=$$(grep -rho '"kondo_[a-z_]*"' internal cmd --include='*.go' --exclude='*_test.go' | \
		tr -d '"' | sort -u | \
		while read m; do grep -q "\`$$m\`" README.md || echo "$$m"; done); \
	if [ -n "$$missing" ]; then \
		echo "lint-metrics-docs: metrics missing from README.md reference table:"; \
		echo "$$missing"; \
		exit 1; \
	fi
	@echo "lint-metrics-docs: OK"

# verify is the full tier-1 check: build, vet, the print lint, the
# metrics-docs lint, plain tests, the race-detector pass over the
# concurrent paths, and the bench regression gate.
verify: build vet lint-prints lint-metrics-docs test race bench-check
	@echo "verify: OK"

bench-quick:
	$(GO) run ./cmd/kondo-bench -exp all -quick

# bench-json regenerates the machine-readable perf trajectory points
# in the repo root: BENCH_perf.json (evals/s, hull count, waste ratio,
# bytes kept, recovery round-trips for one end-to-end pipeline),
# BENCH_carve.json (merge-engine pair-test reduction and speedup over
# the naive reference on a many-hull field), and BENCH_orchestra.json
# (distributed-campaign throughput vs worker count, lease re-issue
# overhead, and digest bit-identity with the local baseline), and
# BENCH_serve.json (recovery-plane throughput, tail latency, SLO
# attainment, and the paired overhead ratios of the tracing+SLO
# observability path and of merkle chunk verification).
bench-json:
	$(GO) run ./cmd/kondo-bench -exp perf -quick -json .
	$(GO) run ./cmd/kondo-bench -exp carve -json .
	$(GO) run ./cmd/kondo-bench -exp orchestra -quick -json .
	$(GO) run ./cmd/kondo-bench -exp serve -quick -json .

# bench-check re-runs the gated experiments with the same flags as
# bench-json and fails when any deterministic count metric regresses
# against the committed BENCH_*.json baselines (wall-clock metrics are
# exempt); every regressed metric of every experiment is listed before
# the non-zero exit. After an intentional behavior change, regenerate
# the baselines with `make bench-json` and commit them.
bench-check:
	$(GO) run ./cmd/kondo-bench -exp perf -quick -check .
	$(GO) run ./cmd/kondo-bench -exp carve -check .
	$(GO) run ./cmd/kondo-bench -exp orchestra -quick -check .
	$(GO) run ./cmd/kondo-bench -exp serve -quick -check .

# trace-demo runs a small debloat campaign with tracing on and
# validates the emitted Chrome trace-event JSON with the kondo-viz
# schema checker. Open the file in https://ui.perfetto.dev to see the
# fuzz/carve/write phases and the per-worker lanes.
# orchestra-demo runs the distributed campaign orchestrator end to end
# over loopback: a kondo-coord coordinator plus two kondo-worker
# evaluator processes (one crashing mid-lease to exercise re-issue),
# then asserts the distributed result digest is bit-identical to an
# in-process `kondo-coord -local` run of the same campaign.
orchestra-demo:
	./scripts/orchestra-demo.sh

# fleet-demo runs a coordinator plus two named workers over loopback
# with fleet tracing on: the coordinator's single -trace-out file must
# stitch all three processes (distinct pids, named lanes, worker lease
# spans re-based onto the coordinator clock — kondo-viz -check-trace
# -min-pids 3 verifies), and the traced distributed digest must stay
# bit-identical to an in-process -local baseline.
fleet-demo:
	./scripts/fleet-demo.sh

# load-demo drives a kondo-serve origin with the kondo-load harness
# over loopback: wire-propagated trace contexts must stitch into one
# 2-pid Chrome trace (kondo-viz -check-trace -min-pids 2 verifies),
# the soak loop must find the origin's error budget intact, SIGTERM
# must drain gracefully, and the committed BENCH_serve.json baseline
# must still pass the regression gate.
load-demo:
	./scripts/load-demo.sh

# verify-demo exercises verified recovery end to end: debloat a
# dataset into a merkle-rooted manifest, soak the origin through the
# verifying client (all proofs must check out), then flip ONE byte of
# the origin file under the running server and assert the next
# verified run rejects it terminally — non-zero exit, a distinct
# "chunk verification FAILED" report, counted rejections in the result
# JSON, and a live /statusz verify view showing the failure.
verify-demo:
	./scripts/verify-demo.sh

TRACE_DEMO_OUT ?= trace-demo.json
trace-demo:
	$(GO) run ./cmd/sdfgen -out trace-demo-data.sdf -dims 128x128 -dtype float64 -chunk 16x16
	$(GO) run ./cmd/kondo -program CS2 -budget 400 -workers 4 \
		-data trace-demo-data.sdf -out trace-demo-debloated.sdf \
		-trace-out $(TRACE_DEMO_OUT)
	$(GO) run ./cmd/kondo-viz -check-trace $(TRACE_DEMO_OUT)
	@rm -f trace-demo-data.sdf trace-demo-debloated.sdf
