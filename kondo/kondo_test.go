package kondo_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/array"
	"repro/internal/ioevent"
	"repro/internal/sdf"
	"repro/kondo"
)

// TestFacadeEndToEnd exercises the public API the way a downstream
// user would: pick a program, debloat it, check quality, materialize
// the subset, and serve reads from it.
func TestFacadeEndToEnd(t *testing.T) {
	p, err := kondo.ProgramByName("LDC2D")
	if err != nil {
		t.Fatal(err)
	}
	cfg := kondo.DefaultConfig()
	cfg.Fuzz.Seed = 1
	res, err := kondo.Debloat(context.Background(), p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := kondo.GroundTruth(p)
	if err != nil {
		t.Fatal(err)
	}
	pr := kondo.Evaluate(truth, res.Approx)
	if pr.Recall < 0.9 || pr.Precision < 0.9 {
		t.Fatalf("LDC2D quality: %+v", pr)
	}
	if b := kondo.BloatFraction(p.Space(), res.Approx); b < 0.8 {
		t.Errorf("bloat fraction %v, want > 0.8 for LDC", b)
	}

	// Materialize a data file and its debloated subset.
	dir := t.TempDir()
	orig := filepath.Join(dir, "orig.sdf")
	w := sdf.NewWriter(orig)
	dw, err := w.CreateDataset("data", p.Space(), array.Float64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := dw.Fill(func(ix array.Index) float64 { return 1 }); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	deb := filepath.Join(dir, "deb.sdf")
	stats, err := kondo.WriteSubset(orig, deb, "data", res.Approx, []int{16, 16})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reduction() < 0.5 {
		t.Errorf("Reduction = %v, want > 0.5", stats.Reduction())
	}

	// Serve reads through the runtime.
	rt, closer, err := kondo.OpenRuntime(deb, "data", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	if _, err := rt.ReadElement(array.NewIndex(0, 0)); err != nil {
		t.Errorf("corner read failed: %v", err)
	}
	if _, err := rt.ReadElement(array.NewIndex(64, 64)); !errors.Is(err, kondo.ErrDataMissing) {
		t.Errorf("center read error = %v, want ErrDataMissing", err)
	}

	// And with recovery.
	fetcher := kondo.NewOriginFetcher(orig)
	defer fetcher.Close()
	rt2, closer2, err := kondo.OpenRuntime(deb, "data", fetcher)
	if err != nil {
		t.Fatal(err)
	}
	defer closer2.Close()
	if v, err := rt2.ReadElement(array.NewIndex(64, 64)); err != nil || v != 1 {
		t.Errorf("recovered read = %v, %v", v, err)
	}
}

func TestFacadePrograms(t *testing.T) {
	if len(kondo.Programs()) != 11 {
		t.Errorf("Programs() = %d, want 11", len(kondo.Programs()))
	}
	if _, err := kondo.ProgramByName("bogus"); err == nil {
		t.Error("unknown program should error")
	}
	p, err := kondo.ProgramForSpace("CS3", []int{64, 64})
	if err != nil || p.Space().Dim(0) != 64 {
		t.Errorf("ProgramForSpace = %v, %v", p, err)
	}
}

// TestFacadeRemoteAndProvenance exercises the §VI extensions through
// the public API: HTTP recovery and the provenance chain.
func TestFacadeRemoteAndProvenance(t *testing.T) {
	dir := t.TempDir()
	p, err := kondo.ProgramByName("CS2")
	if err != nil {
		t.Fatal(err)
	}
	p, err = kondo.ProgramForSpace("CS2", []int{64, 64})
	if err != nil {
		t.Fatal(err)
	}
	space := p.Space()
	origin := filepath.Join(dir, "origin.sdf")
	w := sdf.NewWriter(origin)
	dw, err := w.CreateDataset("data", space, array.Float64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := dw.Fill(func(array.Index) float64 { return 7 }); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	cfg := kondo.DefaultConfig()
	cfg.Fuzz.Seed = 1
	cfg.Fuzz.MaxEvals = 400
	res, err := kondo.Debloat(context.Background(), p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	deb := filepath.Join(dir, "deb.sdf")
	stats, err := kondo.WriteSubset(origin, deb, "data", res.Approx, []int{16, 16})
	if err != nil {
		t.Fatal(err)
	}

	// Remote recovery through the facade.
	srv, err := kondo.NewRemoteServer(origin)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := kondo.NewRemoteClient(ts.URL)
	rt, closer, err := kondo.OpenRuntime(deb, "data", client)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	if v, err := rt.ReadElement(array.NewIndex(63, 0)); err != nil || v != 7 {
		t.Errorf("remote recovery through facade = %v, %v", v, err)
	}
	if client.Fetched() == 0 {
		t.Error("no elements fetched")
	}

	// Provenance chain through the facade.
	g := kondo.ProvenanceFromStore(ioevent.NewStore())
	if err := kondo.RecordDebloatProvenance(g, "origin.sdf", "deb.sdf", p.Name(), res, stats); err != nil {
		t.Fatal(err)
	}
	anc := g.Ancestry("artifact:deb.sdf")
	if len(anc) != 2 {
		t.Errorf("debloat ancestry = %v, want activity + origin", anc)
	}
	var b strings.Builder
	if err := g.DOT(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "wasDerivedFrom") {
		t.Error("DOT missing derivation edge")
	}
}

func TestFacadeContainer(t *testing.T) {
	spec, err := kondo.ParseSpec(strings.NewReader(
		"FROM ubuntu:20.04\nADD ./d.sdf /app/d.sdf\nPARAM [0-63, 0-63]\nENTRYPOINT [\"CS2\"]\nCMD [1, 1, /app/d.sdf]"))
	if err != nil {
		t.Fatal(err)
	}
	srcDir := t.TempDir()
	space := array.MustSpace(64, 64)
	w := sdf.NewWriter(filepath.Join(srcDir, "d.sdf"))
	dw, err := w.CreateDataset("data", space, array.Float64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := dw.Fill(func(array.Index) float64 { return 0 }); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	img, err := kondo.BuildImage(spec, srcDir, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := img.Run([]float64{1, 1}, "data", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Misses != 0 {
		t.Errorf("misses = %d", rep.Misses)
	}
}
