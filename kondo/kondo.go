// Package kondo is the public API of the Kondo reproduction: efficient
// provenance-driven data debloating (Modi et al., ICDE 2024).
//
// Kondo determines which portions of a data file a containerized
// application can ever access across all supported parameter
// valuations Θ, and builds a debloated copy of the file containing
// only those portions. It combines three pieces:
//
//   - a fine-grained I/O audit that maps system-call byte ranges back
//     to array indices through the data file's self-describing
//     metadata,
//   - a data-coverage-directed fuzzer that mutates parameter values
//     toward the boundaries of the accessed regions, and
//   - a bottom-up convex-hull carver that generalizes the observed
//     indices into the approximated index subset I'_Θ.
//
// Basic use:
//
//	p, _ := kondo.ProgramByName("CS2")
//	res, _ := kondo.Debloat(context.Background(), p, kondo.DefaultConfig())
//	fmt.Println(res.Approx.Len(), "indices kept in", len(res.Hulls), "hulls")
//
// The packages under internal/ hold the implementation; this package
// re-exports the surface a downstream user needs: benchmark programs,
// the debloating pipeline, quality metrics, debloated-file
// materialization with the data-missing runtime, and the container
// spec/image model.
package kondo

import (
	"context"
	"io"

	"repro/internal/array"
	"repro/internal/container"
	"repro/internal/dataserve"
	"repro/internal/debloat"
	"repro/internal/ioevent"
	"repro/internal/kondo"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/prov"
	"repro/internal/remote"
	"repro/internal/sdf"
	"repro/internal/workload"
)

// Program is one debloatable application: it declares its parameter
// space Θ and reads a d-dimensional data array.
type Program = workload.Program

// IndexSet is a set of array indices (I_v, IS, I_Θ, I'_Θ).
type IndexSet = array.IndexSet

// Space is a d-dimensional array index space.
type Space = array.Space

// Index is one d-dimensional array index.
type Index = array.Index

// Config configures the fuzz and carve stages.
type Config = kondo.Config

// Result is the pipeline outcome: fuzz observations, carved hulls, and
// the rasterized approximation I'_Θ.
type Result = kondo.Result

// PR bundles precision and recall.
type PR = metrics.PR

// CampaignStats summarizes a fuzz campaign's throughput: evaluations
// per second, worker utilization, failed-test count, queue depth.
type CampaignStats = metrics.CampaignStats

// CampaignOf extracts the throughput stats of a pipeline result's
// fuzz stage.
func CampaignOf(res *Result) CampaignStats { return metrics.Campaign(res.Fuzz) }

// DebloatStats summarizes a debloated-file materialization.
type DebloatStats = debloat.Stats

// ErrDataMissing is the exception raised when a run of the debloated
// container touches carved-away data.
var ErrDataMissing = debloat.ErrDataMissing

// DefaultConfig returns the paper's §V-B configuration.
func DefaultConfig() Config { return kondo.DefaultConfig() }

// Debloat runs the full pipeline (fuzz → carve → rasterize) for a
// program, using audited virtual debloat tests. The context bounds
// the whole pipeline: canceling it (or letting its deadline pass)
// stops the fuzz campaign within one evaluation batch; the partial
// fuzz result is returned alongside the context's error. A failing
// debloat test does not abort the campaign — it is recorded in
// Result.Fuzz.Failures and its seed skipped; fuzzing errors out only
// when every attempted test failed.
func Debloat(ctx context.Context, p Program, cfg Config) (*Result, error) {
	return kondo.Debloat(ctx, p, cfg)
}

// Trace is an in-memory collector of pipeline spans, exportable as
// Chrome trace-event JSON (chrome://tracing, Perfetto). Attach one to
// a context with WithTrace and pass that context to Debloat or a
// Runtime: the fuzz rounds, carve passes, and recovery fetches emit
// spans with zero overhead when no trace is attached.
type Trace = obs.Trace

// NewTrace returns an empty trace collector.
func NewTrace() *Trace { return obs.NewTrace() }

// WithTrace returns a context carrying tr; instrumented pipeline
// stages emit spans into it.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	return obs.WithTrace(ctx, tr)
}

// MetricsRegistry is a concurrent registry of named counters, gauges,
// and histograms with Prometheus text exposition (WritePrometheus).
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// WithMetrics returns a context carrying reg; instrumented pipeline
// stages (fuzz counters, runtime miss/recovery counters) update live
// instruments in it.
func WithMetrics(ctx context.Context, reg *MetricsRegistry) context.Context {
	return obs.WithRegistry(ctx, reg)
}

// Programs returns the 11-program benchmark suite of the paper's
// evaluation at the default sizes (128² in 2D, 64³ in 3D).
func Programs() []Program { return workload.All() }

// ProgramByName resolves a benchmark program ("CS1".."CS5", "PRL2D",
// "PRL3D", "LDC2D", "LDC3D", "RDC2D", "RDC3D", "ARD", "MSI").
func ProgramByName(name string) (Program, error) { return workload.ByName(name) }

// ProgramForSpace instantiates a named program sized to the given
// array extents.
func ProgramForSpace(name string, dims []int) (Program, error) {
	return workload.ForSpace(name, dims)
}

// ParamSpace is the advertised parameter space Θ.
type ParamSpace = workload.ParamSpace

// ParamRange is one inclusive integer parameter range Θ_i.
type ParamRange = workload.ParamRange

// WithParams restricts a program to an advertised parameter space (the
// container spec's PARAM line): the debloated subset then follows the
// advertised Θ, not the program's maximal one.
func WithParams(p Program, ps ParamSpace) (Program, error) {
	return workload.WithParams(p, ps)
}

// GroundTruth computes the exact index subset I_Θ of a program.
func GroundTruth(p Program) (*IndexSet, error) { return workload.GroundTruth(p) }

// Evaluate returns precision and recall of an approximation against a
// ground truth.
func Evaluate(truth, approx *IndexSet) PR { return metrics.Evaluate(truth, approx) }

// BloatFraction returns the fraction of the index space a subset
// identifies as bloat.
func BloatFraction(space Space, subset *IndexSet) float64 {
	return metrics.BloatFraction(space, subset)
}

// WriteSubset writes a debloated copy of one dataset of an sdf file,
// keeping only the chunks containing indices of approx.
func WriteSubset(srcPath, dstPath, dataset string, approx *IndexSet, chunk []int) (DebloatStats, error) {
	return debloat.WriteSubset(srcPath, dstPath, dataset, approx, chunk)
}

// WritePacked writes an element-granular debloated copy: the output
// keeps exactly the approved indices as packed runs, removing every
// byte outside I'_Θ.
func WritePacked(srcPath, dstPath, dataset string, approx *IndexSet) (DebloatStats, error) {
	return debloat.WritePacked(srcPath, dstPath, dataset, approx)
}

// Manifest records how a debloated file was produced (carved hulls,
// granularity, sizes) and can answer coverage queries without the
// data file.
type Manifest = debloat.Manifest

// NewManifest assembles a manifest from pipeline outputs.
func NewManifest(program, dataset string, dims []int, granularity string, chunk []int,
	res *Result, stats DebloatStats) *Manifest {
	return debloat.NewManifest(program, dataset, dims, granularity, chunk,
		res.Hulls, stats, res.Fuzz.Evaluations)
}

// LoadManifest reads a manifest written by Manifest.Save.
func LoadManifest(path string) (*Manifest, error) { return debloat.LoadManifest(path) }

// MerkleSpec is a client's trusted description of one dataset's
// serving-chunk Merkle tree: root, leaf count, and pinned geometry.
// Obtain one from a manifest's MerkleSpec method and arm a
// CachedFetcher with SetVerify to reject substituted or tampered
// chunks before they enter the cache.
type MerkleSpec = sdf.MerkleSpec

// ErrVerifyFailed marks a recovered chunk that failed Merkle
// verification (or identity echo) against the manifest root. It is
// terminal: the origin is lying, not flaky, so the fetcher never
// retries it and never degrades it to ErrDataMissing.
var ErrVerifyFailed = dataserve.ErrVerifyFailed

// Fetcher recovers carved-away element values at the user's end
// (paper §VI's remote-fetch path).
type Fetcher = debloat.Fetcher

// NewOriginFetcher returns a Fetcher serving misses from the original
// (un-debloated) file.
func NewOriginFetcher(path string) *debloat.OriginFetcher {
	return debloat.NewOriginFetcher(path)
}

// Runtime serves a program's reads from a debloated file, raising
// ErrDataMissing (or recovering through a Fetcher) on carved-away
// accesses.
type Runtime = debloat.Runtime

// OpenRuntime opens a debloated data file and returns a Runtime over
// the named dataset, plus a closer for the underlying file.
func OpenRuntime(path, dataset string, fetcher Fetcher) (*Runtime, io.Closer, error) {
	return OpenRuntimeContext(context.Background(), path, dataset, fetcher)
}

// OpenRuntimeContext is OpenRuntime with recoveries bound to ctx:
// when fetcher is a ContextFetcher, canceling ctx aborts in-flight
// and future fetches.
func OpenRuntimeContext(ctx context.Context, path, dataset string, fetcher Fetcher) (*Runtime, io.Closer, error) {
	f, err := sdf.Open(path)
	if err != nil {
		return nil, nil, err
	}
	ds, err := f.Dataset(dataset)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return debloat.NewRuntimeContext(ctx, ds, fetcher), f, nil
}

// ContextFetcher is a Fetcher whose fetches honor a context, so a
// canceled run or a dead origin aborts recovery instead of hanging.
type ContextFetcher = debloat.ContextFetcher

// DataServer is the production recovery data plane (paper §VI): it
// serves an origin file chunk- and hyperslab-granular over HTTP with
// binary value frames, keeps the element/datasets endpoints of the
// legacy protocol alive, and exposes request metrics on /metrics. The
// kondo-serve daemon wraps it.
type DataServer = dataserve.Server

// NewDataServer opens the origin file and returns a data-plane server;
// mount its Handler() on any net/http server.
func NewDataServer(originPath string) (*DataServer, error) {
	return dataserve.NewServer(originPath)
}

// CachedFetcher recovers carved-away elements from a DataServer: one
// miss pulls the whole containing chunk over a single round trip into
// a bounded LRU cache, concurrent misses on a chunk collapse onto one
// request, and a flaky or dead origin degrades to ErrDataMissing after
// bounded retries instead of hanging.
type CachedFetcher = dataserve.Fetcher

// CachedFetcherConfig tunes a CachedFetcher's cache size, timeouts,
// and retry policy.
type CachedFetcherConfig = dataserve.FetcherConfig

// FetchStats snapshots a CachedFetcher's counters: elements served,
// HTTP round trips, retries, and cache hit rate.
type FetchStats = dataserve.FetchStats

// NewCachedFetcher returns a caching fetcher against a DataServer's
// base URL with default configuration.
func NewCachedFetcher(baseURL string) *CachedFetcher {
	return dataserve.NewFetcher(baseURL, nil)
}

// NewCachedFetcherConfig returns a caching fetcher with explicit
// configuration.
func NewCachedFetcherConfig(baseURL string, cfg CachedFetcherConfig) *CachedFetcher {
	return dataserve.NewFetcherConfig(baseURL, nil, cfg)
}

// RemoteServer serves an origin data file's elements over HTTP so
// debloated-container runtimes can recover carved-away accesses
// (paper §VI). It speaks the element-per-round-trip compatibility
// protocol; prefer DataServer for production serving.
type RemoteServer = remote.Server

// NewRemoteServer opens the origin file and returns a server; mount
// its Handler() on any net/http server.
func NewRemoteServer(originPath string) (*RemoteServer, error) {
	return remote.NewServer(originPath)
}

// RemoteClient is a Fetcher pulling missing elements from a
// RemoteServer.
type RemoteClient = remote.Client

// NewRemoteClient returns a client against the server's base URL.
func NewRemoteClient(baseURL string) *RemoteClient {
	return remote.NewClient(baseURL, nil)
}

// ProvenanceGraph is a SPADE-style lineage graph built from audit
// events.
type ProvenanceGraph = prov.Graph

// ProvenanceFromStore builds the run-level provenance of an audited
// execution.
func ProvenanceFromStore(store *ioevent.Store) *ProvenanceGraph {
	return prov.FromStore(store)
}

// RecordDebloatProvenance extends a graph with the debloating
// derivation chain (origin → kondo activity → carved file).
func RecordDebloatProvenance(g *ProvenanceGraph, originFile, debloatedFile, program string, res *Result, stats DebloatStats) error {
	return prov.RecordDebloat(g, originFile, debloatedFile, program,
		res.Fuzz.Evaluations, stats.Reduction())
}

// ContainerSpec is a parsed container specification (FROM/RUN/ADD/
// PARAM/ENTRYPOINT/CMD).
type ContainerSpec = container.Spec

// ContainerImage is a built container image.
type ContainerImage = container.Image

// ParseSpec parses a container specification.
func ParseSpec(r io.Reader) (*ContainerSpec, error) { return container.ParseSpec(r) }

// BuildImage materializes a spec's files from srcDir under root.
func BuildImage(spec *ContainerSpec, srcDir, root string) (*ContainerImage, error) {
	return container.Build(spec, srcDir, root)
}
