// Package repro is a from-scratch Go reproduction of "Kondo: Efficient
// Provenance-Driven Data Debloating" (Modi, Tikmany, Malik, Komondoor,
// Gehani, D'Souza; ICDE 2024).
//
// The public API lives in package repro/kondo; the implementation in
// internal/ (see DESIGN.md for the system inventory). The root-level
// benchmarks in bench_test.go regenerate the paper's tables and
// figures; run them with:
//
//	go test -bench=. -benchmem
package repro
